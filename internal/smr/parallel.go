package smr

import (
	"runtime"
	"sync"
	"time"

	"amcast/internal/metrics"
	"amcast/internal/transport"
)

// ConflictExecutor is the optional state-machine extension that enables
// conflict-aware parallel batch apply. The replica partitions every
// delivery batch into conflict-free runs (ops whose conflict-token sets
// are disjoint), stages all runs of a segment concurrently against an
// immutable snapshot of the state, and then commits the staged effects
// sequentially in run order. Because runs are key-disjoint and each run
// preserves delivery order internally, the merged per-op results, the
// final state, and every checkpoint are byte-identical to sequential
// execution — the whole point of deterministic parallel apply.
type ConflictExecutor interface {
	StateMachine

	// ConflictKeys appends op's conflict tokens to dst and returns the
	// extended slice. Two ops may execute in different runs only if
	// their token sets are disjoint; token collisions between distinct
	// keys are allowed (they merely merge runs, which is conservative
	// and always safe). barrier=true marks an op that may touch
	// arbitrary state (range scans, partition splits, log trims,
	// undecodable input): the replica flushes all staged work and
	// executes it alone, sequentially.
	ConflictKeys(op []byte, dst []uint64) (tokens []uint64, barrier bool)

	// StageRun executes one conflict-free run against an immutable
	// snapshot of the current state plus a private write overlay
	// (read-your-writes within the run), filling out[i] with each op's
	// encoded result. It must not mutate shared state and must be safe
	// to call concurrently with other StageRun calls — but never
	// concurrently with CommitRun or any sequential Execute. The
	// returned effects value is handed back to CommitRun.
	StageRun(groups []transport.RingID, ops [][]byte, out [][]byte) (effects any)

	// CommitRun applies the staged effects to the live state. Called
	// sequentially, in run order, from the apply goroutine only.
	CommitRun(effects any)
}

// applyRun is one conflict-free run: op indices into the enclosing batch
// plus gathered argument/result slices.
type applyRun struct {
	idx     []int
	groups  []transport.RingID
	ops     [][]byte
	out     [][]byte
	effects any
}

func (r *applyRun) reset() {
	r.idx = r.idx[:0]
	r.groups = r.groups[:0]
	r.ops = r.ops[:0]
	r.out = r.out[:0]
	r.effects = nil
}

func (r *applyRun) add(i int, group transport.RingID, op []byte) {
	r.idx = append(r.idx, i)
	r.groups = append(r.groups, group)
	r.ops = append(r.ops, op)
	r.out = append(r.out, nil)
}

// Applier schedules conflict-free runs of a delivery batch onto a bounded
// worker pool. It is owned by the replica's apply goroutine: Apply must
// not be called concurrently with itself. All scratch state (union-find,
// token map, run slices) is pooled across batches so steady-state apply
// does not grow the heap.
type Applier struct {
	sm      ConflictExecutor
	workers int

	tasks     chan func()
	workerWG  sync.WaitGroup
	closeOnce sync.Once

	// Per-segment union-find scratch. parent is indexed by op position
	// relative to segBase; the root of every set is its minimum index,
	// so runs inherit first-op delivery order for free.
	segBase    int
	parent     []int
	tokenOwner map[uint64]int
	tokBuf     []uint64

	// Run assembly scratch.
	runIdx  []int
	runs    []*applyRun
	runPool []*applyRun
	waveWG  sync.WaitGroup

	// Metrics: conflict-run size distribution. runSizes aggregates
	// (count/mean/max); runSizeDist records each run size as an integer
	// sample in a log-bucketed histogram, so Quantile reports run-size
	// percentiles (the time.Duration values are plain counts here).
	runSizes    metrics.BatchGauge
	runSizeDist *metrics.Histogram
	barriers    metrics.Counter
	segments    metrics.Counter
}

// NewApplier builds an applier over sm with the given worker-pool size;
// workers <= 0 selects GOMAXPROCS. The pool goroutines persist until
// Close.
func NewApplier(sm ConflictExecutor, workers int) *Applier {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	a := &Applier{
		sm:          sm,
		workers:     workers,
		tasks:       make(chan func(), 4*workers),
		tokenOwner:  make(map[uint64]int),
		runSizeDist: metrics.NewHistogram(),
	}
	for i := 0; i < workers; i++ {
		a.workerWG.Add(1)
		go func() {
			defer a.workerWG.Done()
			for fn := range a.tasks {
				fn()
			}
		}()
	}
	return a
}

// Workers reports the pool size.
func (a *Applier) Workers() int { return a.workers }

// RunSizes returns the aggregate conflict-run size gauge.
func (a *Applier) RunSizes() *metrics.BatchGauge { return &a.runSizes }

// RunSizeDist returns the run-size distribution histogram (samples are
// run sizes, not durations).
func (a *Applier) RunSizeDist() *metrics.Histogram { return a.runSizeDist }

// Barriers reports how many ops were executed as sequential barriers.
func (a *Applier) Barriers() uint64 { return a.barriers.Load() }

// Close stops the worker pool. Apply must not be called afterwards.
func (a *Applier) Close() {
	a.closeOnce.Do(func() { close(a.tasks) })
	a.workerWG.Wait()
}

// Apply executes the batch, filling out[i] with the encoded result of
// ops[i]. Results, final state, and checkpoint bytes are identical to
// executing the ops one by one in order. len(out) must equal len(ops).
//
//lint:deterministic
func (a *Applier) Apply(groups []transport.RingID, ops [][]byte, out [][]byte) {
	n := len(ops)
	segStart := 0
	a.resetSegment(0)
	for i := 0; i < n; i++ {
		toks, barrier := a.sm.ConflictKeys(ops[i], a.tokBuf[:0])
		if barrier {
			// Flush everything staged so far, then run the barrier op
			// alone with full (sequential) state access.
			a.applySegment(groups, ops, out, segStart, i)
			out[i] = a.sm.Execute(groups[i], ops[i])
			a.barriers.Inc()
			segStart = i + 1
			a.resetSegment(segStart)
			a.tokBuf = toks[:0]
			continue
		}
		a.addOp(i, toks)
		a.tokBuf = toks[:0]
	}
	a.applySegment(groups, ops, out, segStart, n)
}

// resetSegment clears union-find state for a new segment starting at base.
func (a *Applier) resetSegment(base int) {
	a.segBase = base
	a.parent = a.parent[:0]
	clear(a.tokenOwner)
}

// addOp registers op i (absolute batch index) in the current segment.
func (a *Applier) addOp(i int, toks []uint64) {
	rel := i - a.segBase
	a.parent = append(a.parent, rel)
	for _, t := range toks {
		if owner, ok := a.tokenOwner[t]; ok {
			a.union(owner, rel)
		} else {
			a.tokenOwner[t] = rel
		}
	}
}

func (a *Applier) find(x int) int {
	for a.parent[x] != x {
		a.parent[x] = a.parent[a.parent[x]]
		x = a.parent[x]
	}
	return x
}

// union links two sets, keeping the smaller index as root so every set's
// root is its first op in delivery order.
func (a *Applier) union(x, y int) {
	rx, ry := a.find(x), a.find(y)
	switch {
	case rx == ry:
	case rx < ry:
		a.parent[ry] = rx
	default:
		a.parent[rx] = ry
	}
}

// newRun pops a pooled run or allocates one.
func (a *Applier) newRun() *applyRun {
	if len(a.runPool) > 0 {
		r := a.runPool[len(a.runPool)-1]
		a.runPool = a.runPool[:len(a.runPool)-1]
		r.reset()
		return r
	}
	return &applyRun{}
}

// applySegment stages the conflict-free runs of ops[start:end] in
// parallel on the worker pool (the caller stages the first run itself),
// waits for the stage wave, then commits effects sequentially in run
// order and scatters results back into out.
func (a *Applier) applySegment(groups []transport.RingID, ops [][]byte, out [][]byte, start, end int) {
	m := end - start
	if m == 0 {
		return
	}
	a.segments.Inc()

	// Assemble runs in first-op order: roots are minimum indices and j
	// ascends, so a run is created exactly when j hits its root.
	a.runIdx = a.runIdx[:0]
	for j := 0; j < m; j++ {
		a.runIdx = append(a.runIdx, -1)
	}
	a.runs = a.runs[:0]
	for j := 0; j < m; j++ {
		root := a.find(j)
		ri := a.runIdx[root]
		if ri < 0 {
			ri = len(a.runs)
			a.runIdx[root] = ri
			a.runs = append(a.runs, a.newRun())
		}
		a.runs[ri].add(start+j, groups[start+j], ops[start+j])
	}
	for _, r := range a.runs {
		a.runSizes.Observe(len(r.ops))
		a.runSizeDist.Record(time.Duration(len(r.ops)))
	}

	if len(a.runs) == 1 || a.workers <= 1 {
		// Single run (everything conflicts) or sequential pool: stage
		// and commit on the calling goroutine. The overlay guarantees
		// read-your-writes so this matches sequential execution.
		for _, r := range a.runs {
			a.sm.CommitRun(a.sm.StageRun(r.groups, r.ops, r.out))
			a.scatter(r, out)
		}
	} else {
		// Stage wave: workers stage runs[1:], the caller stages
		// runs[0]. No commit overlaps any stage.
		a.waveWG.Add(len(a.runs) - 1)
		for _, r := range a.runs[1:] {
			r := r
			a.tasks <- func() {
				r.effects = a.sm.StageRun(r.groups, r.ops, r.out)
				a.waveWG.Done()
			}
		}
		first := a.runs[0]
		first.effects = a.sm.StageRun(first.groups, first.ops, first.out)
		a.waveWG.Wait()

		// Commit sequentially in run order. Runs are key-disjoint so
		// the order cannot change the final state; committing in run
		// order keeps it obviously deterministic anyway.
		for _, r := range a.runs {
			a.sm.CommitRun(r.effects)
			a.scatter(r, out)
		}
	}

	// Recycle runs.
	for _, r := range a.runs {
		r.effects = nil
		a.runPool = append(a.runPool, r)
	}
	a.runs = a.runs[:0]
}

func (a *Applier) scatter(r *applyRun, out [][]byte) {
	for k, j := range r.idx {
		out[j] = r.out[k]
	}
}
