package smr

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"amcast/internal/recovery"
	"amcast/internal/transport"
)

// ReadLocal makes counterSM a LocalReader: the empty op is "read the
// total"; anything else is not read-only.
func (c *counterSM) ReadLocal(_ transport.RingID, op []byte) ([]byte, bool) {
	if len(op) != 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var out [8]byte
	binary.LittleEndian.PutUint64(out[:], c.total)
	return out[:], true
}

func TestLocalReadCodecRoundTrip(t *testing.T) {
	req := recovery.Vector{1: 7, 9: 2}
	mode, gotReq, bound, op, err := decodeLocalRead(encodeLocalRead(ReadIndex, req, 0, []byte("op")))
	if err != nil || mode != ReadIndex || string(op) != "op" || bound != 0 {
		t.Fatalf("read-index round trip = %v %v %v %q %v", mode, gotReq, bound, op, err)
	}
	if gotReq[1] != 7 || gotReq[9] != 2 {
		t.Fatalf("requirement lost: %v", gotReq)
	}
	mode, _, bound, op, err = decodeLocalRead(encodeLocalRead(BoundedStale, nil, 250*time.Millisecond, []byte("x")))
	if err != nil || mode != BoundedStale || bound != 250*time.Millisecond || string(op) != "x" {
		t.Fatalf("bounded-stale round trip = %v %v %q %v", mode, bound, op, err)
	}
	if _, _, _, _, err := decodeLocalRead(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, _, _, _, err := decodeLocalRead([]byte{99}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestVectorCovers(t *testing.T) {
	applied := recovery.Vector{1: 5, 2: 3}
	for _, tc := range []struct {
		req  recovery.Vector
		want bool
	}{
		{recovery.Vector{}, true},
		{recovery.Vector{1: 5}, true},
		{recovery.Vector{1: 6}, false},
		{recovery.Vector{1: 5, 2: 4}, false},
		{recovery.Vector{7: 100}, true}, // untracked group: ignored
	} {
		if got := vectorCovers(applied, tc.req); got != tc.want {
			t.Errorf("vectorCovers(%v, %v) = %v, want %v", applied, tc.req, got, tc.want)
		}
	}
}

// TestLocalReadBlocksUntilCovered parks a read whose requirement is one
// instance ahead of everything applied; it must not complete until the
// next write lands, and must then observe that write's effect.
func TestLocalReadBlocksUntilCovered(t *testing.T) {
	h := newSMRHarness(t, 0)
	if got := h.submit(5); got != 5 {
		t.Fatalf("submit = %d", got)
	}

	// Push the client's cursor one instance past anything delivered.
	h.client.mu.Lock()
	h.client.observed[1]++
	h.client.mu.Unlock()

	type res struct {
		val []byte
		err error
	}
	done := make(chan res, 1)
	go func() {
		v, err := h.client.LocalRead(2, 1, nil, ReadIndex, 0, 5*time.Second)
		done <- res{v, err}
	}()
	select {
	case r := <-done:
		t.Fatalf("cursor-ahead read returned early: %x %v", r.val, r.err)
	case <-time.After(150 * time.Millisecond):
	}

	// The next write covers the requirement and unblocks the read, which
	// must see the write applied (never a stale pre-write state).
	if got := h.submit(7); got != 12 {
		t.Fatalf("second submit = %d", got)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("local read: %v", r.err)
		}
		if got := binary.LittleEndian.Uint64(r.val); got != 12 {
			t.Fatalf("local read observed %d, want 12", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("local read still blocked after covering write")
	}
	if h.replicas[2].LocalReads() == 0 {
		t.Error("serving replica counted no local reads")
	}
	if h.replicas[2].ReadWait().Count() == 0 {
		t.Error("read-wait histogram recorded nothing")
	}
}

// TestLocalReadBoundedStale: with no rate-leveling skips configured, an
// idle replica's merge progress stalls, so a tight staleness bound must
// fail with ErrStale while a generous one is served.
func TestLocalReadBoundedStale(t *testing.T) {
	h := newSMRHarness(t, 0)
	h.submit(3)
	time.Sleep(150 * time.Millisecond)

	if _, err := h.client.LocalRead(1, 1, nil, BoundedStale, 10*time.Millisecond, 2*time.Second); !errors.Is(err, ErrStale) {
		t.Fatalf("tight bound on idle replica: err = %v, want ErrStale", err)
	}
	v, err := h.client.LocalRead(1, 1, nil, BoundedStale, time.Hour, 2*time.Second)
	if err != nil {
		t.Fatalf("generous bound: %v", err)
	}
	if got := binary.LittleEndian.Uint64(v); got != 3 {
		t.Fatalf("stale read = %d, want 3", got)
	}
}

// TestLocalReadRejectsNonReadOnly: ops the state machine does not accept
// as read-only come back as unsupported, not silently executed.
func TestLocalReadRejectsNonReadOnly(t *testing.T) {
	h := newSMRHarness(t, 0)
	h.submit(1)
	if _, err := h.client.LocalRead(1, 1, addOp(9), ReadIndex, 0, 2*time.Second); !errors.Is(err, ErrLocalReadUnsupported) {
		t.Fatalf("mutating op via local read: err = %v, want ErrLocalReadUnsupported", err)
	}
	// The write must not have executed.
	if got := h.submit(0); got != 1 {
		t.Fatalf("total = %d after rejected local write, want 1", got)
	}
}
