package smr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"amcast/internal/metrics"
	"amcast/internal/recovery"
	"amcast/internal/transport"
)

// Local reads let a client read one replica directly, skipping the
// multicast round, in two modes:
//
//   - Read-index: the request carries the client's observed applied
//     vector (built from the Instance stamps on every reply the client
//     has seen). The replica waits until its own applied vector covers
//     the requirement before serving — the read observes every write the
//     client has observed, so the client's session stays causally
//     consistent (read-your-writes, monotonic reads) without ordering
//     the read through consensus.
//   - Bounded staleness: the request carries a staleness bound. The
//     replica serves immediately if its deterministic merge flushed a
//     batch boundary within the bound; otherwise it refuses with an
//     explicit stale error instead of silently returning old data. With
//     rate leveling active, skip batches act as the liveness heartbeat.
type LocalReadMode uint8

// Local-read modes.
const (
	// ReadIndex waits until the serving replica's applied state covers
	// the client's observed vector.
	ReadIndex LocalReadMode = iota + 1
	// BoundedStale serves immediately if the replica proved merge
	// progress within the client's bound, else fails with ErrStale.
	BoundedStale
)

// Local-read response status codes (first payload byte of a
// KindLocalReadResp message).
const (
	// LocalReadOK: the rest of the payload is the operation's result.
	LocalReadOK byte = iota
	// LocalReadStale: a bounded-staleness read found the replica beyond
	// its staleness bound.
	LocalReadStale
	// LocalReadUnsupported: the state machine does not serve local
	// reads, or the operation is not read-only.
	LocalReadUnsupported
	// LocalReadTimeout: a read-index wait did not get covered in time.
	LocalReadTimeout
	// LocalReadBadRequest: the request payload did not decode.
	LocalReadBadRequest
)

// Local-read errors surfaced to clients.
var (
	// ErrStale reports a bounded-staleness read refused because the
	// replica could not prove freshness within the requested bound.
	ErrStale = errors.New("smr: local read: replica staleness bound exceeded")
	// ErrLocalReadUnsupported reports a local read the serving state
	// machine cannot execute (not read-only, or no LocalReader support).
	ErrLocalReadUnsupported = errors.New("smr: local read: operation not supported")
)

// localReadWaitMax bounds how long a replica parks a read-index read
// waiting for its applied vector to cover the client's requirement.
const localReadWaitMax = 10 * time.Second

// LocalReader is the optional state-machine extension serving local
// reads. ReadLocal executes op against current state if it is read-only,
// returning ok=false otherwise. It is called with the replica's apply
// gate held in read mode: concurrently with other local reads, never
// concurrently with command application.
type LocalReader interface {
	ReadLocal(group transport.RingID, op []byte) (resp []byte, ok bool)
}

// encodeLocalRead builds a KindLocalRead payload: mode byte, then for
// ReadIndex the self-delimiting encoded requirement vector, for
// BoundedStale the bound in big-endian nanoseconds, then the inner op.
func encodeLocalRead(mode LocalReadMode, req recovery.Vector, bound time.Duration, op []byte) []byte {
	var head []byte
	switch mode {
	case ReadIndex:
		head = recovery.EncodeVector(req)
	case BoundedStale:
		head = binary.BigEndian.AppendUint64(nil, uint64(bound))
	}
	out := make([]byte, 0, 1+len(head)+len(op))
	out = append(out, byte(mode))
	out = append(out, head...)
	return append(out, op...)
}

// decodeLocalRead splits a KindLocalRead payload back into its parts.
func decodeLocalRead(payload []byte) (mode LocalReadMode, req recovery.Vector, bound time.Duration, op []byte, err error) {
	if len(payload) < 1 {
		return 0, nil, 0, nil, fmt.Errorf("smr: local read: empty payload")
	}
	mode, rest := LocalReadMode(payload[0]), payload[1:]
	switch mode {
	case ReadIndex:
		req, rest, err = recovery.DecodeVector(rest)
		if err != nil {
			return 0, nil, 0, nil, fmt.Errorf("smr: local read: requirement: %w", err)
		}
	case BoundedStale:
		if len(rest) < 8 {
			return 0, nil, 0, nil, fmt.Errorf("smr: local read: truncated bound")
		}
		bound, rest = time.Duration(binary.BigEndian.Uint64(rest)), rest[8:]
	default:
		return 0, nil, 0, nil, fmt.Errorf("smr: local read: unknown mode %d", mode)
	}
	return mode, req, bound, rest, nil
}

// readWaiter is one parked read-index read.
type readWaiter struct {
	req recovery.Vector
	ch  chan struct{}
}

// noteBoundary runs on the merge goroutine after every batch boundary:
// it advances the replica's applied vector to the node's delivered
// vector (all of which has now been applied) and wakes every read-index
// waiter the new vector covers.
func (r *Replica) noteBoundary() {
	vec := r.cfg.Node.DeliveredVector()
	r.readMu.Lock()
	if r.appliedVec == nil {
		r.appliedVec = vec
	} else {
		for g, k := range vec {
			if k > r.appliedVec[g] {
				r.appliedVec[g] = k
			}
		}
	}
	if len(r.readWaiters) > 0 {
		keep := r.readWaiters[:0]
		for _, w := range r.readWaiters {
			if vectorCovers(r.appliedVec, w.req) {
				close(w.ch)
			} else {
				keep = append(keep, w)
			}
		}
		for i := len(keep); i < len(r.readWaiters); i++ {
			r.readWaiters[i] = nil
		}
		r.readWaiters = keep
	}
	r.readMu.Unlock()
}

// vectorCovers reports whether applied[g] >= req[g] for every group in
// req that applied tracks. Groups the replica never subscribed to are
// ignored: a client's observed vector spans all partitions, and
// requirements for rings this replica does not serve can never be (and
// never need to be) satisfied here.
func vectorCovers(applied, req recovery.Vector) bool {
	for g, k := range req {
		have, ok := applied[g]
		if !ok {
			continue
		}
		if have < k {
			return false
		}
	}
	return true
}

// waitCovered blocks until the replica's applied vector covers req,
// returning false on timeout or shutdown.
func (r *Replica) waitCovered(req recovery.Vector, timeout time.Duration) bool {
	r.readMu.Lock()
	if vectorCovers(r.appliedVec, req) {
		r.readMu.Unlock()
		return true
	}
	w := &readWaiter{req: req, ch: make(chan struct{})}
	r.readWaiters = append(r.readWaiters, w)
	r.readMu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-w.ch:
		return true
	case <-timer.C:
	case <-r.done:
	}
	// Unregister; the boundary callback may have closed w.ch while we
	// were giving up, in which case the wait did succeed.
	r.readMu.Lock()
	for i, cand := range r.readWaiters {
		if cand == w {
			last := len(r.readWaiters) - 1
			r.readWaiters[i] = r.readWaiters[last]
			r.readWaiters[last] = nil
			r.readWaiters = r.readWaiters[:last]
			break
		}
	}
	r.readMu.Unlock()
	select {
	case <-w.ch:
		return true
	default:
		return false
	}
}

// AppliedVector returns a copy of the replica's applied vector: the
// delivered vector prefix whose commands have all been executed.
func (r *Replica) AppliedVector() recovery.Vector {
	r.readMu.Lock()
	defer r.readMu.Unlock()
	return r.appliedVec.Clone()
}

// ReadWait returns the histogram of read-index wait latencies (time from
// request arrival until the applied vector covered the requirement).
func (r *Replica) ReadWait() *metrics.Histogram { return r.readWait }

// LocalReads reports how many local reads this replica has served.
func (r *Replica) LocalReads() uint64 { return r.localReads.Load() }

// serveLocalRead handles one KindLocalRead request on its own goroutine
// (read-index waits park; the service loop must not).
func (r *Replica) serveLocalRead(m transport.Message) {
	reader, ok := r.cfg.SM.(LocalReader)
	if !ok {
		r.replyLocalRead(m, LocalReadUnsupported, nil)
		return
	}
	mode, req, bound, op, err := decodeLocalRead(m.Payload)
	if err != nil {
		r.replyLocalRead(m, LocalReadBadRequest, nil)
		return
	}
	switch mode {
	case ReadIndex:
		start := time.Now()
		if !r.waitCovered(req, localReadWaitMax) {
			r.replyLocalRead(m, LocalReadTimeout, nil)
			return
		}
		r.readWait.Record(time.Since(start))
	case BoundedStale:
		since, ok := r.cfg.Node.SinceProgress()
		if !ok || since > bound {
			r.replyLocalRead(m, LocalReadStale, nil)
			return
		}
	}
	// The apply gate keeps command application out while the read runs,
	// so the read observes a batch-boundary state — never a partially
	// applied batch (parallel apply commits runs out of delivery order
	// within a batch).
	r.applyGate.RLock()
	resp, ok := reader.ReadLocal(m.Ring, op)
	r.applyGate.RUnlock()
	if !ok {
		r.replyLocalRead(m, LocalReadUnsupported, nil)
		return
	}
	r.localReads.Add(1)
	r.replyLocalRead(m, LocalReadOK, resp)
}

// replyLocalRead sends the status + result back, stamped with the
// replica's applied high-water mark for the addressed group so the
// client advances its observed vector.
func (r *Replica) replyLocalRead(m transport.Message, status byte, resp []byte) {
	payload := make([]byte, 0, 1+len(resp))
	payload = append(payload, status)
	payload = append(payload, resp...)
	r.readMu.Lock()
	inst := r.appliedVec[m.Ring]
	r.readMu.Unlock()
	_ = r.tr.Send(m.From, transport.Message{
		Kind:     transport.KindLocalReadResp,
		To:       m.From,
		Ring:     m.Ring,
		Count:    uint32(r.cfg.Partition),
		Seq:      m.Seq,
		Instance: inst,
		Payload:  payload,
	})
}
