package smr

import (
	"sync"
	"testing"

	"amcast/internal/transport"
)

// keySM is a minimal ConflictExecutor for scheduling tests: an op is
// [key, payload...]; key 0xFF is a barrier. Commits append ops to a log
// so tests can check per-key ordering; staging itself allocates nothing.
type keySM struct {
	mu       sync.Mutex
	log      [][]byte
	executed int // barrier executions via Execute
}

func (k *keySM) Execute(_ transport.RingID, op []byte) []byte {
	k.mu.Lock()
	k.log = append(k.log, op)
	k.executed++
	k.mu.Unlock()
	return op
}

func (k *keySM) Snapshot() []byte     { return nil }
func (k *keySM) Restore([]byte) error { return nil }

func (k *keySM) ConflictKeys(op []byte, dst []uint64) ([]uint64, bool) {
	if len(op) == 0 || op[0] == 0xFF {
		return dst, true
	}
	return append(dst, uint64(op[0])), false
}

func (k *keySM) StageRun(_ []transport.RingID, ops [][]byte, out [][]byte) any {
	for i, op := range ops {
		out[i] = op
	}
	return ops
}

func (k *keySM) CommitRun(effects any) {
	ops := effects.([][]byte)
	k.mu.Lock()
	k.log = append(k.log, ops...)
	k.mu.Unlock()
}

func batchOf(keys ...byte) ([]transport.RingID, [][]byte, [][]byte) {
	groups := make([]transport.RingID, len(keys))
	ops := make([][]byte, len(keys))
	for i, k := range keys {
		groups[i] = 1
		ops[i] = []byte{k, byte(i)}
	}
	return groups, ops, make([][]byte, len(keys))
}

// TestApplierPreservesPerKeyOrder: ops sharing a key commit in delivery
// order; barriers split segments and count as sequential executions.
func TestApplierPreservesPerKeyOrder(t *testing.T) {
	sm := &keySM{}
	a := NewApplier(sm, 4)
	defer a.Close()

	groups, ops, out := batchOf(1, 2, 1, 3, 0xFF, 2, 1, 2)
	a.Apply(groups, ops, out)

	for i := range ops {
		if string(out[i]) != string(ops[i]) {
			t.Fatalf("op %d result %x, want echo %x", i, out[i], ops[i])
		}
	}
	if got := a.Barriers(); got != 1 {
		t.Fatalf("barriers = %d, want 1", got)
	}
	if sm.executed != 1 {
		t.Fatalf("sequential executions = %d, want 1", sm.executed)
	}
	// Per-key delivery order must survive commit reordering.
	pos := map[byte][]byte{}
	for _, op := range sm.log {
		pos[op[0]] = append(pos[op[0]], op[1])
	}
	for key, seq := range pos {
		for i := 1; i < len(seq); i++ {
			if seq[i] <= seq[i-1] {
				t.Fatalf("key %d committed out of order: %v", key, seq)
			}
		}
	}
	// The barrier op must commit after everything before it and before
	// everything after it.
	var barrierAt, before, after int
	for i, op := range sm.log {
		switch {
		case op[0] == 0xFF:
			barrierAt = i
		case op[1] < 4:
			before++
		}
	}
	for i := barrierAt + 1; i < len(sm.log); i++ {
		after++
	}
	if before != 4 || after != 3 {
		t.Fatalf("barrier split %d before / %d after, want 4/3 (log %v)", before, after, sm.log)
	}
}

// TestApplierAllocsStayBounded guards the allocation-churn fix: with all
// scratch (union-find, token map, run slices, outputs) pooled, steady-
// state Apply must not allocate more than the per-run dispatch closures.
func TestApplierAllocsStayBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts inflated under the race detector")
	}
	sm := &keySM{}
	a := NewApplier(sm, 4)
	defer a.Close()

	const n = 64
	groups := make([]transport.RingID, n)
	ops := make([][]byte, n)
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		groups[i] = 1
		ops[i] = []byte{byte(i % 16), byte(i)} // 16 conflict-free runs
	}
	// Warm the pools.
	for i := 0; i < 4; i++ {
		a.Apply(groups, ops, out)
		sm.log = sm.log[:0]
	}
	allocs := testing.AllocsPerRun(50, func() {
		a.Apply(groups, ops, out)
		sm.log = sm.log[:0]
	})
	// 16 runs → 15 dispatch closures plus slack; anything near one alloc
	// per op means batch scratch regressed to per-batch allocation.
	if perOp := allocs / n; perOp > 0.75 {
		t.Fatalf("Apply allocates %.1f per batch (%.2f/op); scratch pooling regressed", allocs, perOp)
	}
}

func BenchmarkApplierApply(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "sequentialPool", 4: "4workers"}[workers], func(b *testing.B) {
			sm := &keySM{}
			a := NewApplier(sm, workers)
			defer a.Close()
			const n = 256
			groups := make([]transport.RingID, n)
			ops := make([][]byte, n)
			out := make([][]byte, n)
			for i := 0; i < n; i++ {
				groups[i] = 1
				ops[i] = []byte{byte(i % 32), byte(i)}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Apply(groups, ops, out)
				sm.log = sm.log[:0]
			}
		})
	}
}
