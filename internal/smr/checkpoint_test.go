package smr

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"sync"
	"testing"
	"time"

	"amcast/internal/coord"
	"amcast/internal/core"
	"amcast/internal/netem"
	"amcast/internal/recovery"
	"amcast/internal/transport"
)

// TestBuildNodeCorruptRemoteSnapshotFallsBackLocal is the regression test
// for the recovery-poisoning bug: a peer advertises a newer checkpoint
// tuple but serves a corrupt snapshot. The recovering replica must fall
// back to its LOCAL checkpoint — keeping the peer's vector without its
// state would restart the replica advertising a safeVec it does not hold,
// letting the trim protocol (Predicate 2) discard instances it still
// needs. Before the fix, `best` kept the state-less remote vector.
func TestBuildNodeCorruptRemoteSnapshotFallsBackLocal(t *testing.T) {
	for _, mode := range []string{"bad-bytes", "crc-mismatch", "bad-framing"} {
		t.Run(mode, func(t *testing.T) {
			net := transport.NewNetwork(nil)
			defer net.Close()
			svc := coord.NewService()
			members := []coord.Member{
				{ID: 1, Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner},
				{ID: 2, Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner},
			}
			if err := svc.CreateRing(1, members); err != nil {
				t.Fatal(err)
			}

			// The recovering replica holds an intact local checkpoint at
			// instance 5.
			localStore := recovery.NewMemStore()
			localState := encodeStateParts(core.Cursor{}, encodeDedup(nil), []byte("local-state"))
			if err := localStore.Save(recovery.Checkpoint{Vector: recovery.Vector{1: 5}, State: localState}); err != nil {
				t.Fatal(err)
			}

			// Fake peer: advertises instance 50, serves a corrupt snapshot.
			peerTr := net.Attach(2, netem.SiteLocal)
			peerRouter := transport.NewRouter(peerTr)
			go func() {
				for m := range peerRouter.Service() {
					switch m.Kind {
					case transport.KindCheckpointReq:
						_ = peerTr.Send(m.From, transport.Message{
							Kind:    transport.KindCheckpointResp,
							Seq:     m.Seq,
							Payload: recovery.EncodeVector(recovery.Vector{1: 50}),
						})
					case transport.KindSnapshotReq:
						junk := []byte("this is not a checkpoint encoding")
						chunk := transport.Message{
							Kind:     transport.KindSnapshotChunk,
							Seq:      m.Seq,
							Instance: 0,
							Count:    1,
							Votes:    0,
							Ballot:   crc32.ChecksumIEEE(junk),
							Value:    transport.Value{ID: uint64(len(junk))},
							Payload:  junk,
						}
						switch mode {
						case "crc-mismatch":
							chunk.Ballot++ // transfer CRC won't verify
						case "bad-framing":
							chunk.Instance = uint64(len(junk)) // offset past the buffer
						}
						_ = peerTr.Send(m.From, chunk)
					}
				}
			}()

			tr := net.Attach(1, netem.SiteLocal)
			router := transport.NewRouter(tr)
			res, err := BuildNode(RecoveryOptions{
				Core:    core.Config{Self: 1, Router: router, Coord: svc},
				Store:   localStore,
				Peers:   []transport.ProcessID{2},
				Service: router.Service(),
				Timeout: 2 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer res.Node.Stop()
			if res.Remote {
				t.Error("corrupt remote snapshot reported as remote recovery")
			}
			if got := res.Checkpoint.Vector[1]; got != 5 {
				t.Errorf("checkpoint vector = %v, want local {1:5}; a state-less remote vector poisons trim", res.Checkpoint.Vector)
			}
			if !bytes.Equal(res.Checkpoint.State, localState) {
				t.Error("fell back without the local state")
			}
		})
	}
}

// TestLargeStateChunkedRecovery exercises the chunked snapshot path end to
// end: replica state is padded past several snapshotChunkSize frames, the
// replica's stable store is wiped, and recovery must pull the multi-chunk
// remote checkpoint from a peer, reassemble it and catch up.
func TestLargeStateChunkedRecovery(t *testing.T) {
	// ~700 KB snapshots: 3 chunks at the 256 KB default chunk size.
	h := newSMRHarnessPad(t, 5, 700<<10)
	var want uint64
	for i := uint64(1); i <= 20; i++ {
		h.submit(i)
		want += i
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.sms[3].Total() != want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	h.net.Detach(3)
	h.replicas[3].Stop()
	h.svc.MarkDown(3)
	// Lose replica 3's stable storage entirely: recovery must fetch the
	// remote checkpoint (now several KindSnapshotChunk frames).
	h.stores[3] = recovery.NewMemStore()

	for i := uint64(1); i <= 10; i++ {
		h.submit(300 + i)
		want += 300 + i
	}

	h.svc.MarkUp(3)
	h.startReplica(3, 5, 3*time.Second)
	deadline = time.Now().Add(10 * time.Second)
	for h.sms[3].Total() != want && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := h.sms[3].Total(); got != want {
		t.Errorf("recovered replica total = %d, want %d", got, want)
	}
	if vec := h.replicas[3].SafeVector(); vec[1] == 0 {
		t.Error("recovered replica has an empty safe vector")
	}
}

// TestSnapshotChunkRoundTrip drives the chunk assembler directly over a
// multi-chunk encoding, including duplicate frames.
func TestSnapshotChunkRoundTrip(t *testing.T) {
	old := snapshotChunkSize
	snapshotChunkSize = 16
	defer func() { snapshotChunkSize = old }()

	cp := recovery.Checkpoint{
		Vector: recovery.Vector{1: 9, 2: 7},
		State:  bytes.Repeat([]byte("0123456789"), 11), // 110 B -> 9 chunks
	}
	enc := cp.Encode()
	var frames []transport.Message
	sink := captureTransport{out: &frames}
	sendSnapshotChunks(sink, 9, 42, enc)
	if len(frames) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(frames))
	}

	var asm *ChunkAssembly
	feed := append([]transport.Message{frames[0]}, frames...) // duplicate first frame
	var done bool
	for _, m := range feed {
		if asm == nil {
			if asm = NewChunkAssembly(m); asm == nil {
				t.Fatal("assembly rejected valid framing")
			}
		}
		var err error
		done, err = asm.Add(m)
		if err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	if !done {
		t.Fatal("assembly incomplete after all chunks")
	}
	got, err := recovery.DecodeCheckpoint(asm.buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Vector[1] != 9 || !bytes.Equal(got.State, cp.State) {
		t.Error("reassembled checkpoint mismatch")
	}
}

// captureTransport records sent messages (test double).
type captureTransport struct{ out *[]transport.Message }

func (c captureTransport) ID() transport.ProcessID { return 0 }
func (c captureTransport) Send(to transport.ProcessID, m transport.Message) error {
	m.To = to
	*c.out = append(*c.out, m)
	return nil
}
func (c captureTransport) Recv() <-chan transport.Message { return nil }
func (c captureTransport) Close() error                   { return nil }

// TestEncodeDedupDeterministic: identical dedup states must encode to
// identical bytes regardless of map insertion/iteration order, so
// checkpoint encodings stay checksummable.
func TestEncodeDedupDeterministic(t *testing.T) {
	a := map[transport.ProcessID]*clientWindow{}
	b := map[transport.ProcessID]*clientWindow{}
	ids := []transport.ProcessID{42, 7, 10001, 3, 999}
	for _, id := range ids {
		a[id] = newClientWindow(uint64(id) * 3)
	}
	for i := len(ids) - 1; i >= 0; i-- {
		b[ids[i]] = newClientWindow(uint64(ids[i]) * 3)
	}
	ea, eb := encodeDedup(a), encodeDedup(b)
	if !bytes.Equal(ea, eb) {
		t.Error("same dedup state encoded to different bytes")
	}
	got, err := decodeDedup(ea)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("decoded %d clients, want %d", len(got), len(ids))
	}
	for _, id := range ids {
		if got[id] == nil || got[id].floor != uint64(id)*3 {
			t.Errorf("client %d floor lost", id)
		}
	}
}

// TestDecodeDedupRejectsCorrupt: a truncated or padded dedup table must
// surface ErrCorrupt instead of silently dropping entries — forgetting an
// executed command means executing it twice.
func TestDecodeDedupRejectsCorrupt(t *testing.T) {
	dedup := map[transport.ProcessID]*clientWindow{
		1: newClientWindow(10),
		2: newClientWindow(20),
	}
	enc := encodeDedup(dedup)
	for i := 0; i < len(enc); i++ {
		if _, err := decodeDedup(enc[:i]); err == nil {
			t.Fatalf("accepted truncation at %d bytes", i)
		}
	}
	if _, err := decodeDedup(append(enc, 0)); err == nil {
		t.Error("accepted trailing garbage")
	}
	if _, err := decodeDedup(enc); err != nil {
		t.Errorf("rejected intact encoding: %v", err)
	}
}

// TestCheckpointSaveFailureRetriesAtNextBatch: a failing store must not
// silently postpone durability a full interval — the replica re-captures
// at the next batch boundary once the store recovers.
func TestCheckpointSaveFailureRetriesAtNextBatch(t *testing.T) {
	net := transport.NewNetwork(nil)
	defer net.Close()
	svc := coord.NewService()
	members := []coord.Member{{ID: 1, Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner}}
	if err := svc.CreateRing(1, members); err != nil {
		t.Fatal(err)
	}
	tr := net.Attach(1, netem.SiteLocal)
	router := transport.NewRouter(tr)
	node, err := core.New(core.Config{Self: 1, Router: router, Coord: svc,
		Ring: core.RingOptions{RetryInterval: 30 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	store := &flakyStore{failing: true}
	rep, err := NewReplica(ReplicaConfig{
		Self: 1, Partition: 1, Groups: []transport.RingID{1},
		Node: node, Transport: tr, Service: router.Service(),
		SM: &counterSM{}, Checkpoints: store, CheckpointEvery: 5,
	}, recovery.Checkpoint{})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()

	// Client.
	ctr := net.Attach(10, netem.SiteLocal)
	crouter := transport.NewRouter(ctr)
	cnode, err := core.New(core.Config{Self: 10, Router: crouter, Coord: svc})
	if err != nil {
		t.Fatal(err)
	}
	defer cnode.Stop()
	cl, err := NewClient(ClientConfig{Self: 10, Node: cnode, Transport: ctr, Service: crouter.Service()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	submit := func(n uint64) {
		if _, err := cl.Submit([]transport.RingID{1}, addOp(n), []transport.RingID{1}, 1, 5*time.Second); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}

	// Cross the first checkpoint interval while the store fails.
	for i := 0; i < 6; i++ {
		submit(1)
	}
	deadline := time.Now().Add(3 * time.Second)
	for store.Attempts() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if store.Attempts() == 0 {
		t.Fatal("no save attempted after crossing the interval")
	}
	if rep.CheckpointCount() != 0 {
		t.Fatal("failed save counted as a durable checkpoint")
	}

	// Heal the store: ONE more command (far short of another interval)
	// must trigger the retry at its batch boundary.
	store.SetFailing(false)
	submit(1)
	deadline = time.Now().Add(3 * time.Second)
	for rep.CheckpointCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if rep.CheckpointCount() == 0 {
		t.Error("save never retried at the next batch boundary")
	}
	if vec := rep.SafeVector(); vec[1] == 0 {
		t.Error("safeVec did not advance after the retried save")
	}
}

// flakyStore fails Save on demand.
type flakyStore struct {
	mem      recovery.MemStore
	mu       sync.Mutex
	failing  bool
	attempts int
}

func (f *flakyStore) Save(c recovery.Checkpoint) error {
	f.mu.Lock()
	f.attempts++
	failing := f.failing
	f.mu.Unlock()
	if failing {
		return errFlaky
	}
	return f.mem.Save(c)
}

func (f *flakyStore) Latest() (recovery.Checkpoint, bool) { return f.mem.Latest() }

func (f *flakyStore) Attempts() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts
}

func (f *flakyStore) SetFailing(v bool) {
	f.mu.Lock()
	f.failing = v
	f.mu.Unlock()
}

var errFlaky = fmt.Errorf("flaky store: injected failure")
