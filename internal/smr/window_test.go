package smr

import (
	"encoding/binary"
	"fmt"
	"testing"

	"amcast/internal/core"
	"amcast/internal/transport"
)

func TestClientWindowBasics(t *testing.T) {
	w := newClientWindow(0)
	if dup, _ := w.check(1); dup {
		t.Fatal("fresh seq reported duplicate")
	}
	w.record(1, []byte("r1"))
	if dup, resp := w.check(1); !dup || string(resp) != "r1" {
		t.Fatalf("dup=%v resp=%q after record", dup, resp)
	}
	if w.floor != 1 {
		t.Fatalf("floor = %d, want 1", w.floor)
	}
	// Out of order: 3 executed before 2; floor waits, then jumps.
	w.record(3, []byte("r3"))
	if w.floor != 1 {
		t.Fatalf("floor = %d after gap, want 1", w.floor)
	}
	if dup, resp := w.check(3); !dup || string(resp) != "r3" {
		t.Fatalf("out-of-order seq lost: dup=%v resp=%q", dup, resp)
	}
	w.record(2, []byte("r2"))
	if w.floor != 3 {
		t.Fatalf("floor = %d after filling gap, want 3", w.floor)
	}
}

func TestClientWindowRestartFloor(t *testing.T) {
	w := newClientWindow(10)
	if dup, _ := w.check(5); !dup {
		t.Fatal("seq below restored floor not duplicate")
	}
	if dup, _ := w.check(11); dup {
		t.Fatal("seq above restored floor duplicate")
	}
}

// TestClientWindowGrowth drives a sparse sequence that exceeds the
// initial ring size: the window must grow and never forget an executed
// seq above the floor.
func TestClientWindowGrowth(t *testing.T) {
	w := newClientWindow(0)
	// Execute seqs 2, 4, 6, ... leaving odd gaps so the floor stays 0
	// and the span grows past windowSlotsMin.
	const n = windowSlotsMin * 4
	for s := uint64(2); s <= n; s += 2 {
		w.record(s, []byte{byte(s)})
	}
	for s := uint64(2); s <= n; s += 2 {
		if dup, _ := w.check(s); !dup {
			t.Fatalf("executed seq %d forgotten after growth", s)
		}
	}
	for s := uint64(1); s <= n; s += 2 {
		if dup, _ := w.check(s); dup {
			t.Fatalf("unexecuted seq %d reported duplicate", s)
		}
	}
}

// TestClientWindowOverflowSpill pins the ring at capacity: collisions
// beyond windowSlotsMax spill to the overflow map instead of forgetting
// executed commands.
func TestClientWindowOverflowSpill(t *testing.T) {
	w := newClientWindow(0)
	// Record seq 2 and a colliding seq far beyond the max ring span.
	w.record(2, []byte("lo"))
	far := uint64(2 + 4*windowSlotsMax)
	w.record(far, []byte("hi"))
	if dup, resp := w.check(2); !dup || string(resp) != "lo" {
		t.Fatalf("collision victim forgotten: dup=%v resp=%q", dup, resp)
	}
	if dup, resp := w.check(far); !dup || string(resp) != "hi" {
		t.Fatalf("collision winner lost: dup=%v resp=%q", dup, resp)
	}
}

// makeDelivery wraps a command for the given client/seq into a delivery.
func makeDelivery(client transport.ProcessID, seq uint64, add uint64) core.Delivery {
	var op [8]byte
	binary.LittleEndian.PutUint64(op[:], add)
	return core.Delivery{
		Group: 1,
		Data:  Command{Client: client, Seq: seq, Op: op[:]}.Encode(),
	}
}

// TestDeliverBatchDuplicateWithinBatch delivers the same command twice in
// one batch: it must execute exactly once, with both responses answered.
func TestDeliverBatchDuplicateWithinBatch(t *testing.T) {
	sm := &counterSM{}
	r := &Replica{
		cfg:     ReplicaConfig{Partition: 1, SM: sm},
		dedup:   make(map[transport.ProcessID]*clientWindow),
		runKeys: make(map[cmdKey]struct{}),
	}
	r.batchSM, _ = any(sm).(BatchExecutor)

	r.deliverBatch([]core.Delivery{
		makeDelivery(9, 1, 5),
		makeDelivery(9, 2, 7),
		makeDelivery(9, 1, 5), // duplicate of the first, same batch
		makeDelivery(9, 3, 1),
	})
	if got := sm.Total(); got != 13 {
		t.Fatalf("total = %d, want 13 (duplicate re-executed?)", got)
	}
	if got := r.ExecutedCount(); got != 3 {
		t.Fatalf("executed = %d, want 3", got)
	}
	// A later batch repeating an old seq is also suppressed.
	r.deliverBatch([]core.Delivery{makeDelivery(9, 2, 7)})
	if got := sm.Total(); got != 13 {
		t.Fatalf("total = %d after cross-batch duplicate, want 13", got)
	}
}

// batchCounterSM wraps counterSM with a BatchExecutor implementation so
// the replica's batch entry point is exercised.
type batchCounterSM struct {
	counterSM
	batchCalls int
}

func (b *batchCounterSM) ExecuteBatch(groups []transport.RingID, ops [][]byte) [][]byte {
	b.batchCalls++
	out := make([][]byte, len(ops))
	for i, op := range ops {
		out[i] = b.Execute(groups[i], op)
	}
	return out
}

// TestDeliverBatchUsesBatchExecutor verifies multi-command runs go through
// ExecuteBatch and responses land positionally.
func TestDeliverBatchUsesBatchExecutor(t *testing.T) {
	sm := &batchCounterSM{}
	r := &Replica{
		cfg:     ReplicaConfig{Partition: 1, SM: sm},
		dedup:   make(map[transport.ProcessID]*clientWindow),
		runKeys: make(map[cmdKey]struct{}),
	}
	r.batchSM = sm

	var batch []core.Delivery
	for s := uint64(1); s <= 5; s++ {
		batch = append(batch, makeDelivery(4, s, s))
	}
	r.deliverBatch(batch)
	if sm.batchCalls != 1 {
		t.Fatalf("ExecuteBatch calls = %d, want 1", sm.batchCalls)
	}
	if got := sm.Total(); got != 15 {
		t.Fatalf("total = %d, want 15", got)
	}
	// Responses cached for duplicate re-reply carry the running totals.
	w := r.dedup[4]
	for s := uint64(1); s <= 5; s++ {
		_, resp := w.check(s)
		want := s * (s + 1) / 2
		if got := binary.LittleEndian.Uint64(resp); got != want {
			t.Fatalf("cached resp for seq %d = %d, want %d", s, got, want)
		}
	}
}

// TestExecuteBatchMatchesExecute is the store-level equivalence property
// between the per-op and batch apply entry points.
func TestExecuteBatchMatchesExecute(t *testing.T) {
	a, b := &batchCounterSM{}, &batchCounterSM{}
	var ops [][]byte
	var groups []transport.RingID
	for i := 0; i < 20; i++ {
		var op [8]byte
		binary.LittleEndian.PutUint64(op[:], uint64(i))
		ops = append(ops, op[:])
		groups = append(groups, 1)
	}
	var single [][]byte
	for i, op := range ops {
		single = append(single, a.Execute(groups[i], op))
	}
	batched := b.ExecuteBatch(groups, ops)
	if len(single) != len(batched) {
		t.Fatalf("length mismatch %d vs %d", len(single), len(batched))
	}
	for i := range single {
		if fmt.Sprintf("%x", single[i]) != fmt.Sprintf("%x", batched[i]) {
			t.Fatalf("result %d diverges", i)
		}
	}
}
