package smr

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"amcast/internal/coord"
	"amcast/internal/core"
	"amcast/internal/recovery"
	"amcast/internal/ring"
	"amcast/internal/trace"
	"amcast/internal/transport"
)

// Client submits commands to replicated services over atomic multicast and
// matches replica responses, mirroring the paper's client behaviour
// (Section 7.2): multicast the command to the owning group, wait for the
// first response from a replica — or, for multi-partition operations, for
// at least one response from every involved partition. Responses travel
// outside the multicast layer (the paper uses UDP; here, the transport).
type Client struct {
	id     transport.ProcessID
	node   *core.Node
	tr     transport.Transport
	svc    *coord.Service  // optional: enables re-route on re-election
	tracer *trace.Recorder // optional: roots a trace at every sampled submit

	mu      sync.Mutex
	waiters map[uint64]*waiter
	// byValue maps an in-flight command's multicast value id to its
	// sequence number, so coordinator Overloaded replies (which only see
	// the opaque value) reach the right waiter.
	byValue map[uint64]uint64
	closed  bool
	// observed is the client's session read index: per group, the
	// highest applied instance any reply (command response or local
	// read) has carried. A read-index local read presents it as the
	// requirement the serving replica must cover, which yields
	// read-your-writes and monotonic reads without a multicast round.
	observed recovery.Vector
	// lrWaiters routes KindLocalReadResp messages to in-flight LocalRead
	// calls by sequence number.
	lrWaiters map[uint64]chan transport.Message

	seq atomic.Uint64

	// Flow-control instrumentation: command retransmissions and
	// overload-driven backoffs.
	retransmits     atomic.Uint64
	overloadBackoff atomic.Uint64

	done     chan struct{}
	loopDone chan struct{}
	stopOnce sync.Once
}

type waiter struct {
	need   int
	accept map[transport.RingID]bool // nil accepts any distinct partition
	seen   map[transport.RingID]bool
	resps  [][]byte
	ch     chan [][]byte
	// overload receives a coordinator's retry-after hint when the
	// command was shed by admission control (buffered, 1).
	overload chan time.Duration
}

// match classifies a response by its delivery group and partition tag and
// returns the dedup key, or ok=false if the response is not counted (e.g.
// a non-target partition answering a global-group scan).
func (w *waiter) match(deliveryGroup, partition transport.RingID) (transport.RingID, bool) {
	if w.accept == nil {
		return partition, true
	}
	if w.accept[deliveryGroup] {
		return deliveryGroup, true
	}
	if w.accept[partition] {
		return partition, true
	}
	return 0, false
}

// ClientConfig configures a Client.
type ClientConfig struct {
	// Self is the client's process id (responses are addressed to it).
	Self transport.ProcessID
	// Node is a Multi-Ring Paxos endpoint used to multicast commands.
	// A pure client node (member of no ring) suffices.
	Node *core.Node
	// Transport receives responses (via Service) and is kept for
	// symmetry with Replica.
	Transport transport.Transport
	// Service is the process's non-consensus message channel.
	Service <-chan transport.Message
	// Coord, when set, lets in-flight submissions ride out coordinator
	// failover: a proposal addressed to a dead coordinator is re-routed
	// to the newly elected one as soon as the configuration changes
	// (watch-driven, jittered), and ErrNoCoordinator windows are retried
	// instead of surfaced to the caller.
	Coord *coord.Service
	// Tracer, when set, stamps a trace context on sampled submissions
	// (per the recorder's sampling divisor) and records the root
	// "submit" span covering submit-to-reply latency.
	Tracer *trace.Recorder
}

// NewClient starts a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Node == nil || cfg.Service == nil {
		return nil, errors.New("smr: Node and Service are required")
	}
	c := &Client{
		id:        cfg.Self,
		node:      cfg.Node,
		tr:        cfg.Transport,
		svc:       cfg.Coord,
		tracer:    cfg.Tracer,
		waiters:   make(map[uint64]*waiter),
		byValue:   make(map[uint64]uint64),
		observed:  make(recovery.Vector),
		lrWaiters: make(map[uint64]chan transport.Message),
		done:      make(chan struct{}),
		loopDone:  make(chan struct{}),
	}
	go c.respLoop(cfg.Service)
	return c, nil
}

// ErrTimeout reports that a command did not gather its responses in time.
var ErrTimeout = errors.New("smr: command timed out")

// ErrClientClosed reports use of a closed client.
var ErrClientClosed = errors.New("smr: client closed")

// Submit multicasts op to each group in groups (one command per group,
// same sequence number) and waits until `need` matching responses arrive,
// retrying the multicast on timeout.
//
// accept filters which responses count: a response matches if its delivery
// group or its partition tag is in accept (nil accepts any, deduplicated by
// partition). need <= 0 defaults to len(accept), or 1 when accept is nil.
//
// Recipes: single-partition command → groups=[g], accept=[g]. Scan via a
// global group → groups=[global], accept=target partitions. Scan over
// independent rings → groups=targets, accept=targets. Multi-append where
// the client cannot name partitions → accept=nil, need=partition count.
func (c *Client) Submit(groups []transport.RingID, op []byte, accept []transport.RingID, need int, timeout time.Duration) ([][]byte, error) {
	return c.submit(groups, op, accept, need, timeout, 0)
}

// SubmitMarker submits op to one group with a caller-chosen multicast
// value id — a reconfiguration marker. Learners arm the id with
// PrepareResubscribe before the call, and every retransmission reuses it,
// so a retried marker decided twice still triggers exactly one epoch
// transition (the second decision is an ordinary duplicate the replicas
// suppress).
func (c *Client) SubmitMarker(group transport.RingID, op []byte, marker uint64, timeout time.Duration) ([]byte, error) {
	resps, err := c.submit([]transport.RingID{group}, op, []transport.RingID{group}, 1, timeout, marker)
	if err != nil {
		return nil, err
	}
	return resps[0], nil
}

func (c *Client) submit(groups []transport.RingID, op []byte, accept []transport.RingID, need int, timeout time.Duration, valueID uint64) ([][]byte, error) {
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	if need <= 0 {
		if len(accept) > 0 {
			need = len(accept)
		} else {
			need = 1
		}
	}
	seq := c.seq.Add(1)
	// Pre-allocate the multicast value id so coordinator admission
	// control can address its Overloaded reply to this command (the
	// payload is opaque to the ring; the value id is all it sees).
	// Retransmissions reuse the id, so a retried marker still triggers
	// exactly one epoch transition.
	if valueID == 0 {
		valueID = c.node.MarkerID()
	}
	w := &waiter{
		need:     need,
		seen:     make(map[transport.RingID]bool),
		ch:       make(chan [][]byte, 1),
		overload: make(chan time.Duration, 1),
	}
	if accept != nil {
		w.accept = make(map[transport.RingID]bool, len(accept))
		for _, g := range accept {
			w.accept[g] = true
		}
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.waiters[seq] = w
	c.byValue[valueID] = seq
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, seq)
		delete(c.byValue, valueID)
		c.mu.Unlock()
	}()

	cmd := Command{Client: c.id, Seq: seq, Op: op}
	payload := cmd.Encode()
	// Sampled submissions carry a trace context on every multicast frame
	// (retransmissions included — they reuse the value id, so their spans
	// join the same trace); the root "submit" span is recorded when the
	// reply arrives.
	tctx := c.tracer.StartRoot()
	var tstart time.Time
	if tctx.Sampled() {
		tstart = time.Now()
	}
	noCoord := 0
	send := func() error {
		for _, g := range groups {
			if err := c.node.MulticastValueTraced(g, valueID, payload, tctx); err != nil {
				if errors.Is(err, ring.ErrNoCoordinator) && c.svc != nil {
					// Failover window: the group has no coordinator
					// right now. The config watcher below re-sends the
					// moment one is elected; the retry timer is the
					// backstop. Only the overall deadline gives up.
					noCoord++
					continue
				}
				return err
			}
		}
		return nil
	}

	// Watch the target groups' configurations while the command is in
	// flight: a coordinator change re-routes the proposal immediately
	// (with jitter, so a fresh coordinator is not hit by every waiting
	// client in the same instant) instead of waiting out a retry period.
	var reelect chan struct{}
	if c.svc != nil {
		reelect = make(chan struct{}, 1)
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		for _, g := range groups {
			ch, cancel := c.svc.Watch(g)
			defer cancel()
			go func(ch <-chan coord.RingConfig) {
				var last transport.ProcessID
				first := true
				for {
					select {
					case cfg, ok := <-ch:
						if !ok {
							return
						}
						if first {
							last, first = cfg.Coordinator, false
							continue
						}
						if cfg.Coordinator == last {
							continue
						}
						last = cfg.Coordinator
						if cfg.Coordinator != 0 {
							select {
							case reelect <- struct{}{}:
							default:
							}
						}
					case <-stopWatch:
						return
					}
				}
			}(ch)
		}
	}

	if err := send(); err != nil {
		return nil, err
	}

	// Retransmit on a timer (lost command or response; replicas suppress
	// duplicates). An Overloaded reply replaces the next retransmission
	// with a jittered backoff sized by the coordinator's retry-after
	// hint, so a congested coordinator drains instead of being hammered;
	// the overall deadline still bounds the whole attempt, and a command
	// that never got through a full queue fails with an error wrapping
	// ring.ErrOverloaded so callers can tell overload from loss.
	overall := time.NewTimer(timeout)
	defer overall.Stop()
	baseRetry := timeout / 4
	retry := time.NewTimer(baseRetry)
	defer retry.Stop()
	overloaded := 0
	for {
		select {
		case resps := <-w.ch:
			if tctx.Sampled() {
				c.tracer.Record(trace.Span{
					TraceID:  tctx.TraceID,
					SpanID:   tctx.SpanID, // root: children parent on it
					Name:     "submit",
					Ring:     uint32(groups[0]),
					ValueID:  valueID,
					Start:    tstart,
					Duration: time.Since(tstart),
				})
			}
			return resps, nil
		case d := <-w.overload:
			overloaded++
			c.overloadBackoff.Add(1)
			if d <= 0 {
				d = baseRetry
			}
			// Full jitter on top of the hint, capped so one backoff
			// never eats the whole budget.
			d += rand.N(d/2 + time.Millisecond)
			if d > timeout/2 {
				d = timeout / 2
			}
			if !retry.Stop() {
				select {
				case <-retry.C:
				default:
				}
			}
			retry.Reset(d)
		case <-reelect:
			// New coordinator elected: re-route promptly. The jittered
			// reset spreads the stampede of waiting clients; routing the
			// send through the retry case keeps one resend path.
			if !retry.Stop() {
				select {
				case <-retry.C:
				default:
				}
			}
			retry.Reset(time.Millisecond + rand.N(10*time.Millisecond))
		case <-retry.C:
			c.retransmits.Add(1)
			if err := send(); err != nil {
				return nil, err
			}
			retry.Reset(baseRetry)
		case <-overall.C:
			if overloaded > 0 {
				return nil, fmt.Errorf("smr: command timed out after %d overload backoffs: %w", overloaded, ring.ErrOverloaded)
			}
			if noCoord > 0 {
				return nil, fmt.Errorf("smr: command timed out with %d no-coordinator windows: %w", noCoord, ring.ErrNoCoordinator)
			}
			return nil, ErrTimeout
		case <-c.done:
			return nil, ErrClientClosed
		}
	}
}

// Retransmits reports command retransmissions issued (lost messages or
// slow responses).
func (c *Client) Retransmits() uint64 { return c.retransmits.Load() }

// OverloadBackoffs reports how many times a coordinator shed one of this
// client's commands and the client backed off instead of hammering it.
func (c *Client) OverloadBackoffs() uint64 { return c.overloadBackoff.Load() }

// respLoop matches replica responses to waiting submissions.
func (c *Client) respLoop(service <-chan transport.Message) {
	defer close(c.loopDone)
	for {
		select {
		case <-c.done:
			return
		case m, ok := <-service:
			if !ok {
				return
			}
			if m.Kind == transport.KindOverloaded {
				// Admission control: a coordinator shed our proposal.
				// Route the retry-after hint to the waiting submit.
				c.mu.Lock()
				if seq, ok := c.byValue[m.Value.ID]; ok {
					if w := c.waiters[seq]; w != nil {
						select {
						case w.overload <- time.Duration(m.Instance) * time.Millisecond:
						default:
						}
					}
				}
				c.mu.Unlock()
				continue
			}
			if m.Kind == transport.KindLocalReadResp {
				c.mu.Lock()
				if m.Instance > c.observed[m.Ring] {
					c.observed[m.Ring] = m.Instance
				}
				if ch, ok := c.lrWaiters[m.Seq]; ok {
					select {
					case ch <- m:
					default:
					}
				}
				c.mu.Unlock()
				continue
			}
			if m.Kind != transport.KindResponse {
				continue
			}
			c.mu.Lock()
			if m.Instance > c.observed[m.Ring] {
				c.observed[m.Ring] = m.Instance
			}
			w := c.waiters[m.Seq]
			if w != nil {
				key, ok := w.match(m.Ring, transport.RingID(m.Count))
				if ok && !w.seen[key] {
					w.seen[key] = true
					resp := append([]byte(nil), m.Payload...)
					w.resps = append(w.resps, resp)
					if len(w.seen) >= w.need {
						select {
						case w.ch <- w.resps:
						default:
						}
					}
				}
			}
			c.mu.Unlock()
		}
	}
}

// ObservedVector returns a copy of the client's session read index: per
// group, the highest applied instance any reply has carried.
func (c *Client) ObservedVector() recovery.Vector {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.observed.Clone()
}

// LocalRead sends a read-only operation directly to one replica,
// skipping the multicast round. With mode ReadIndex the request carries
// the client's observed vector and the replica serves only once its
// applied state covers it; with mode BoundedStale the replica serves
// only if it proved merge progress within bound, else ErrStale. The
// returned bytes are the state machine's encoded result.
func (c *Client) LocalRead(target transport.ProcessID, group transport.RingID, op []byte, mode LocalReadMode, bound, timeout time.Duration) ([]byte, error) {
	if c.tr == nil {
		return nil, errors.New("smr: local read: client has no transport")
	}
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	var req recovery.Vector
	if mode == ReadIndex {
		req = c.ObservedVector()
	}
	seq := c.seq.Add(1)
	ch := make(chan transport.Message, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.lrWaiters[seq] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.lrWaiters, seq)
		c.mu.Unlock()
	}()

	err := c.tr.Send(target, transport.Message{
		Kind:    transport.KindLocalRead,
		From:    c.id,
		To:      target,
		Ring:    group,
		Seq:     seq,
		Payload: encodeLocalRead(mode, req, bound, op),
	})
	if err != nil {
		return nil, err
	}
	overall := time.NewTimer(timeout)
	defer overall.Stop()
	select {
	case m := <-ch:
		if len(m.Payload) < 1 {
			return nil, fmt.Errorf("smr: local read: malformed response")
		}
		switch m.Payload[0] {
		case LocalReadOK:
			return append([]byte(nil), m.Payload[1:]...), nil
		case LocalReadStale:
			return nil, ErrStale
		case LocalReadTimeout:
			return nil, ErrTimeout
		default:
			return nil, ErrLocalReadUnsupported
		}
	case <-overall.C:
		return nil, ErrTimeout
	case <-c.done:
		return nil, ErrClientClosed
	}
}

// Close stops the client; in-flight Submits return ErrClientClosed.
func (c *Client) Close() {
	c.stopOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		close(c.done)
		<-c.loopDone
	})
}
