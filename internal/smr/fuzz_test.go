package smr

import (
	"hash/crc32"
	"testing"

	"amcast/internal/transport"
)

// FuzzChunkAssembly drives the chunked-transfer reassembly with both
// honest and corrupted framing. The honest path must reassemble the
// original bytes; the corrupted path may error but must never panic or
// write out of bounds — the framing fields all come from a peer.
func FuzzChunkAssembly(f *testing.F) {
	f.Add([]byte("the quick brown fox"), uint16(4), byte(0))
	f.Add([]byte{}, uint16(1), byte(0))
	f.Add([]byte("corrupt me"), uint16(3), byte(7))
	f.Add([]byte("one"), uint16(64), byte(0))

	f.Fuzz(func(t *testing.T, data []byte, chunkSize uint16, corrupt byte) {
		size := int(chunkSize)
		if size == 0 {
			size = 1
		}
		total := (len(data) + size - 1) / size
		if total == 0 {
			total = 1
		}
		crc := crc32.ChecksumIEEE(data)
		chunk := func(i int) transport.Message {
			off := i * size
			end := off + size
			if end > len(data) {
				end = len(data)
			}
			m := transport.Message{
				Kind:     transport.KindSnapshotChunk,
				Instance: uint64(off),
				Count:    uint32(total),
				Votes:    uint32(i),
				Ballot:   crc,
				Value:    transport.Value{ID: uint64(len(data))},
			}
			if off < len(data) {
				m.Payload = data[off:end]
			}
			return m
		}

		// Corrupt one framing field of one chunk, chosen by the fuzzer.
		mutate := func(m transport.Message) transport.Message {
			switch corrupt % 6 {
			case 1:
				m.Instance += uint64(corrupt)
			case 2:
				m.Votes += uint32(corrupt)
			case 3:
				m.Ballot ^= uint32(corrupt)
			case 4:
				m.Value.ID += uint64(corrupt)
			case 5:
				m.Count += uint32(corrupt)
			}
			return m
		}

		a := NewChunkAssembly(mutate(chunk(0)))
		if a == nil {
			if corrupt%6 == 0 {
				t.Fatalf("honest first chunk rejected (len=%d total=%d)", len(data), total)
			}
			return
		}
		var done bool
		var err error
		for i := 0; i < total; i++ {
			m := chunk(i)
			if i == int(corrupt)%total {
				m = mutate(m)
			}
			done, err = a.Add(m)
			if err != nil {
				return // corruption detected; that is the contract
			}
		}
		if corrupt%6 == 0 {
			// Honest transfer: must complete and reproduce the input.
			if !done {
				t.Fatalf("honest transfer of %d chunks never completed", total)
			}
			got := a.Bytes()
			if string(got) != string(data) {
				t.Fatalf("reassembly mismatch: got %d bytes, want %d", len(got), len(data))
			}
		}
	})
}

// FuzzDecodeDedup hardens the dedup-table decoder: arbitrary bytes must
// decode or error without panicking, and anything accepted must survive
// an encode/decode round trip with identical floors (the table is part
// of every checkpoint, so a lenient decoder would corrupt recovery).
func FuzzDecodeDedup(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeDedup(nil))
	f.Add(encodeDedup(map[transport.ProcessID]*clientWindow{
		3: newClientWindow(17),
		9: newClientWindow(0),
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		dedup, err := decodeDedup(data)
		if err != nil {
			return
		}
		enc := encodeDedup(dedup)
		dedup2, err := decodeDedup(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if len(dedup2) != len(dedup) {
			t.Fatalf("round trip changed table size: %d != %d", len(dedup2), len(dedup))
		}
		for c, w := range dedup {
			w2 := dedup2[c]
			if w2 == nil || w2.floor != w.floor {
				t.Fatalf("round trip changed client %d floor", c)
			}
		}
	})
}
