package ring

import (
	"fmt"
	"testing"
	"time"

	"amcast/internal/coord"
	"amcast/internal/netem"
	"amcast/internal/storage"
	"amcast/internal/transport"
)

// TestDeliveryBatches exercises the batch delivery channel directly: all
// decided instances arrive in order, batches are never empty, and
// released buffers are recycled through the pool.
func TestDeliveryBatches(t *testing.T) {
	net := transport.NewNetwork(nil)
	defer net.Close()
	svc := coord.NewService()
	var members []coord.Member
	for i := 1; i <= 3; i++ {
		members = append(members, coord.Member{
			ID:    transport.ProcessID(i),
			Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner,
		})
	}
	if err := svc.CreateRing(1, members); err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, 3)
	for i := 1; i <= 3; i++ {
		router := transport.NewRouter(net.Attach(transport.ProcessID(i), netem.SiteLocal))
		n, err := New(Config{
			Ring:          1,
			Self:          transport.ProcessID(i),
			Router:        router,
			Coord:         svc,
			Log:           storage.NewMemLog(),
			RetryInterval: 30 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Stop()
		nodes[i-1] = n
	}

	const count = 300
	go func() {
		for i := 0; i < count; i++ {
			_ = nodes[0].Propose([]byte(fmt.Sprintf("v%03d", i)))
		}
	}()

	var got int
	var batches int
	deadline := time.After(20 * time.Second)
	for got < count {
		select {
		case b, ok := <-nodes[1].DeliveryBatches():
			if !ok {
				t.Fatalf("channel closed at %d/%d", got, count)
			}
			if len(b) == 0 {
				t.Fatal("empty batch delivered")
			}
			batches++
			for _, d := range b {
				if d.Value.Skip {
					continue
				}
				if want := fmt.Sprintf("v%03d", got); string(d.Value.Data) != want {
					t.Fatalf("delivery %d = %q, want %q", got, d.Value.Data, want)
				}
				got++
			}
			nodes[1].ReleaseBatch(b)
		case <-deadline:
			t.Fatalf("timed out at %d/%d (in %d batches)", got, count, batches)
		}
	}
	if batches > count {
		t.Errorf("batches (%d) exceed messages (%d)", batches, count)
	}
}

// TestReleaseBatchRecycles verifies the buffer pool round-trip.
func TestReleaseBatchRecycles(t *testing.T) {
	n := &Node{batchFree: make(chan []Delivery, 2)}
	b := make([]Delivery, 3, deliveryBatchCap)
	b[0] = Delivery{Ring: 1, Instance: 7, Value: transport.Value{Data: []byte("x")}}
	n.ReleaseBatch(b)
	got := n.getBatch()
	if cap(got) != deliveryBatchCap || len(got) != 0 {
		t.Fatalf("recycled batch len=%d cap=%d", len(got), cap(got))
	}
	// Entries were cleared so pooled arrays do not pin payloads.
	got = got[:1]
	if got[0].Value.Data != nil || got[0].Instance != 0 {
		t.Errorf("recycled batch retains entry: %+v", got[0])
	}
	// Empty pool falls back to allocation.
	fresh := n.getBatch()
	if cap(fresh) != deliveryBatchCap {
		t.Errorf("fresh batch cap = %d", cap(fresh))
	}
}
