// Package ring implements Ring Paxos: atomic broadcast over a
// unidirectional ring overlay, as described in Section 4 of the paper and
// originally in Marandi et al. (DSN 2012), in the TCP-only variant this
// paper introduces (no IP-multicast).
//
// All processes of a ring — proposers, acceptors, learners — are arranged
// in a logical ring. Consensus on a sequence of instances is reached with
// an optimized Paxos:
//
//   - Phase 1 is pre-executed once per coordinator term for all instances.
//   - A proposer sends its value to the coordinator (the first alive
//     acceptor of the ring).
//   - The coordinator assigns the value a consensus instance and forwards a
//     combined Phase 2A/2B message — proposal plus its own vote — to its
//     successor.
//   - Each acceptor durably logs its vote *before* forwarding (required for
//     recovery, Section 5.1) and increments the vote count; non-acceptors
//     forward verbatim.
//   - The acceptor whose vote completes a majority replaces the message
//     with a Decision that circulates one full loop so every process
//     learns the value and its decision.
//
// Skip values (rate leveling, Section 4) decide Count consecutive null
// instances in a single consensus instance; learners deliver them as
// Deliveries with Value.Skip set so Multi-Ring Paxos can advance its
// deterministic merge.
package ring

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"amcast/internal/bufpool"
	"amcast/internal/coord"
	"amcast/internal/metrics"
	"amcast/internal/storage"
	"amcast/internal/trace"
	"amcast/internal/transport"
)

// Delivery is one decided consensus instance handed to the application (or
// to the Multi-Ring Paxos merge layer) in instance order.
type Delivery struct {
	Ring     transport.RingID
	Instance uint64
	Value    transport.Value
}

// deliveryBatchCap is the target size of one delivery batch: the learner
// coalesces contiguous decided instances into batches of at most this many
// entries before the batch channel send becomes blocking.
const deliveryBatchCap = 256

// Config configures a ring node.
type Config struct {
	// Ring is the ring (multicast group) identifier.
	Ring transport.RingID
	// Self is this process's identifier.
	Self transport.ProcessID
	// Router delivers this process's incoming messages.
	Router *transport.Router
	// Coord is the coordination service holding the ring configuration.
	Coord *coord.Service
	// Log is the acceptor's stable vote log. Required for acceptors.
	Log storage.Log

	// Window bounds outstanding undecided instances at the coordinator.
	Window int
	// MaxPending bounds the coordinator's queued proposals.
	MaxPending int
	// RetryInterval is how often the coordinator re-proposes undecided
	// instances and learners chase delivery gaps.
	RetryInterval time.Duration
	// DeliverBuffer caps the delivery stage's lag, in delivery entries: a
	// subscriber that falls further behind than this transitions the
	// learner to catch-up (retransmit-path redelivery) instead of
	// blocking the protocol event loop.
	DeliverBuffer int

	// SkipEnabled turns on rate leveling (Section 4).
	SkipEnabled bool
	// Delta is the rate-leveling interval (paper: 5 ms LAN, 20 ms WAN).
	Delta time.Duration
	// Lambda is the maximum expected message rate per second (paper:
	// 9000 LAN, 2000 WAN). With AdaptiveSkip it is only the initial
	// target.
	Lambda int
	// AdaptiveSkip replaces the statically preset λ with a feedback loop:
	// the coordinator tracks its decided-rate EWMA per Δ window and moves
	// the skip target within [LambdaMin, LambdaMax] — up sharply when
	// learners report that the deterministic merge is stalling on this
	// ring (KindFlowFeedback), down gently when nobody is waiting, so a
	// lagging ring levels itself and fast rings stop flooding skip
	// traffic through the WAL and network.
	AdaptiveSkip bool
	// LambdaMin / LambdaMax bound the adaptive skip target (defaults:
	// Lambda/16 and Lambda*16).
	LambdaMin int
	LambdaMax int

	// TrimInterval enables coordinator-driven log trimming (Section 5.2).
	// Zero disables it.
	TrimInterval time.Duration

	// BatchBytes enables message packing: the coordinator packs queued
	// proposals into one consensus instance up to this many payload
	// bytes (paper: 32 KB packets). Zero disables batching, as in the
	// Figure 3 baseline.
	BatchBytes int

	// StartInstance makes the learner begin in-order delivery at this
	// instance, skipping everything below. Replica recovery uses it to
	// resume after an installed checkpoint (Section 5.2).
	StartInstance uint64

	// Tracer, when set, records distributed-tracing spans for values
	// whose frames carry a sampled trace context (internal/trace). Nil
	// disables all trace accounting on this node at zero cost.
	Tracer *trace.Recorder

	// CommitFailureBudget bounds consecutive failed group commits before
	// the acceptor steps out loudly: it marks itself down in the
	// coordination service so the surviving quorum routes around it,
	// instead of silently retrying a dead disk forever. The retained
	// batch keeps retrying; if the log recovers the node marks itself up
	// again. Zero means the default (32); negative disables stepping out
	// (retry forever, the pre-budget behaviour).
	CommitFailureBudget int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Window == 0 {
		out.Window = 256
	}
	if out.MaxPending == 0 {
		out.MaxPending = 16384
	}
	if out.RetryInterval == 0 {
		out.RetryInterval = 100 * time.Millisecond
	}
	if out.DeliverBuffer == 0 {
		out.DeliverBuffer = 8192
	}
	if out.Delta == 0 {
		out.Delta = 5 * time.Millisecond
	}
	if out.Lambda == 0 {
		out.Lambda = 9000
	}
	if out.AdaptiveSkip {
		if out.LambdaMin == 0 {
			out.LambdaMin = max(1, out.Lambda/16)
		}
		if out.LambdaMax == 0 {
			out.LambdaMax = out.Lambda * 16
		}
	}
	if out.CommitFailureBudget == 0 {
		out.CommitFailureBudget = 32
	}
	return out
}

// Errors returned by Propose.
var (
	ErrNoCoordinator = errors.New("ring: no coordinator elected")
	ErrOverloaded    = errors.New("ring: proposal queue full")
	ErrStopped       = errors.New("ring: node stopped")
)

// flight tracks an instance proposed by this coordinator, for retries.
type flight struct {
	value    transport.Value
	lastSent time.Time
}

// acceptedRec is the acceptor's volatile view of a vote (mirrored in Log).
type acceptedRec struct {
	ballot uint32
	value  transport.Value
}

// Node is one process's participation in one ring. A process participates
// in several rings by creating one Node per ring over a shared Router.
type Node struct {
	cfg  Config
	id   transport.ProcessID
	ring transport.RingID
	tr   transport.Transport
	in   <-chan transport.Message

	watch       <-chan coord.RingConfig
	cancelWatch func()

	// deliverCh carries batches of contiguous decided instances; pending
	// accumulates the next batch (run-loop owned) and batchFree recycles
	// consumed batch buffers so the hot path does not allocate per batch.
	deliverCh chan []Delivery
	pending   []Delivery
	batchFree chan []Delivery

	// Delivery stage (delivery.go): the run loop hands finished batches
	// to dqueue (bounded by DeliverBuffer entries, tracked in dlag) and
	// the deliveryLoop goroutine drains them into deliverCh, absorbing
	// all consumer-side blocking.
	dmu          sync.Mutex
	dcond        *sync.Cond
	dqueue       [][]Delivery
	dhead        int // index of the next batch to drain (O(1) pops)
	dlag         int
	dclosed      bool
	deliveryDone chan struct{}

	// Catch-up state: catchupNext (written only by the run loop; atomic
	// so FlowStats can read the watermark) is the next instance the
	// consumer still needs after a buffer overrun; inCatchup mirrors the
	// mode for concurrent readers. catchupRR rotates retransmission
	// targets and catchupUnavailFrom records which peers reported the
	// range unservable (abort once every live peer acceptor did).
	catchupNext        atomic.Uint64
	inCatchup          atomic.Bool
	catchupRR          int
	catchupUnavailFrom map[transport.ProcessID]bool

	// Flow-control instrumentation (atomics; read by FlowStats).
	overruns       atomic.Uint64
	catchupDropped atomic.Uint64
	catchupServed  atomic.Uint64
	catchupAborted atomic.Uint64
	shedCount      atomic.Uint64
	fbCount        atomic.Uint64
	lambdaGauge    metrics.Gauge

	// pacer owns rate-leveling accounting (run-loop owned).
	pacer *skipPacer

	// perMsgOnce/perMsgCh back the per-message Deliveries adapter.
	perMsgOnce sync.Once
	perMsgCh   chan Delivery

	// mu guards rc (read by Propose from other goroutines).
	mu sync.Mutex
	rc coord.RingConfig

	// Run-loop-owned state (accessed only by run()).
	succ          transport.ProcessID
	isCoord       bool
	phase1Ready   bool
	ballot        uint32
	promised      uint32
	nextInstance  uint64
	pendingQ      proposalQueue
	inFlight      map[uint64]*flight
	proposedInWin int

	learned     map[uint64]transport.Value
	nextDeliver uint64
	maxDecided  uint64
	idleTicks   int // retry ticks since the learner last made progress

	accepted map[uint64]acceptedRec
	// acceptedIdx keeps the keys of accepted sorted so Phase 1A report
	// walks visit only instances >= the scan point instead of the whole
	// map.
	acceptedIdx []uint64

	// Group-commit staging (run-loop owned): handlers append durable
	// votes to walBatch and outbound messages to stagedSends; at the end
	// of each drained burst commitStaged issues one Log.PutBatch — one
	// buffered write + one fsync for the burst under SyncEveryPut — and
	// only then releases the staged sends, preserving the paper's "log
	// before forward" invariant (Section 5.1) at batch granularity.
	walBatch    []storage.Record
	stagedSends []transport.Message
	// walBufs holds the pooled buffers backing walBatch's records; they
	// recycle once the group commit lands (the log copies records).
	// burstRefs holds the read-block and interned-payload references of
	// the burst being drained, released after the burst's commit+flush.
	walBufs   []*bufpool.Buf
	burstRefs []*bufpool.Buf
	batchTr   transport.BatchSender // non-nil when tr coalesces writes
	// commitWedged is set while a group commit has failed and its batch
	// is retained for retry: sends were dropped and delivery release is
	// withheld until the log accepts the batch, so neither messages nor
	// deliveries ever outrun durability.
	commitWedged bool
	// commitFails counts consecutive failed group commits (run-loop
	// owned); at CommitFailureBudget the node steps out (self MarkDown).
	commitFails int
	steppedOut  bool // run-loop owned mirror of steppedOutFlag

	// WAL-health instrumentation (atomics; read by WALHealth).
	commitFailCount atomic.Uint64
	steppedOutFlag  atomic.Bool
	lastCommitErr   atomic.Value // string

	walGauge  metrics.BatchGauge
	sendGauge metrics.BatchGauge

	// Tracing (telemetry-only): tracer records spans, tags parks the
	// sampled contexts riding incoming frames keyed by value id, and
	// stagedTraces (run-loop owned) queues wal-commit spans for the
	// burst currently staged for group commit.
	tracer       *trace.Recorder
	tags         *traceTags
	stagedTraces []stagedTrace

	safeResps map[transport.ProcessID]uint64
	lastTrim  uint64

	// Counters for instrumentation (atomic; read by Stats).
	decidedCount atomic.Uint64
	skippedCount atomic.Uint64

	proposeSeq atomic.Uint32

	done     chan struct{}
	loopDone chan struct{}
	stopOnce sync.Once
}

// New creates and starts a ring node. The ring must already exist in the
// coordination service and Self must be one of its members.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	rc, ok := cfg.Coord.Ring(cfg.Ring)
	if !ok {
		return nil, fmt.Errorf("ring: ring %d not registered", cfg.Ring)
	}
	roles := rc.Roles(cfg.Self)
	if roles == 0 {
		return nil, fmt.Errorf("ring: process %d is not a member of ring %d", cfg.Self, cfg.Ring)
	}
	if roles.Has(coord.RoleAcceptor) && cfg.Log == nil {
		return nil, fmt.Errorf("ring: acceptor %d needs a stable log", cfg.Self)
	}
	watch, cancel := cfg.Coord.Watch(cfg.Ring)
	n := &Node{
		rc:           rc,
		cfg:          cfg,
		id:           cfg.Self,
		ring:         cfg.Ring,
		tr:           cfg.Router.Transport(),
		in:           cfg.Router.Ring(cfg.Ring),
		watch:        watch,
		cancelWatch:  cancel,
		deliverCh:    make(chan []Delivery, 2),
		pending:      make([]Delivery, 0, deliveryBatchCap),
		batchFree:    make(chan []Delivery, 32),
		deliveryDone: make(chan struct{}),
		inFlight:     make(map[uint64]*flight),
		learned:      make(map[uint64]transport.Value),
		nextDeliver:  max(1, cfg.StartInstance),
		nextInstance: 1,
		accepted:     make(map[uint64]acceptedRec),
		safeResps:    make(map[transport.ProcessID]uint64),
		done:         make(chan struct{}),
		loopDone:     make(chan struct{}),
		tracer:       cfg.Tracer,
	}
	if n.tracer != nil {
		n.tags = newTraceTags()
	}
	n.dcond = sync.NewCond(&n.dmu)
	n.pacer = newSkipPacer(cfg)
	n.lambdaGauge.Set(int64(cfg.Lambda))
	n.batchTr, _ = n.tr.(transport.BatchSender)
	// Recover durable acceptor state and apply the initial configuration
	// before accepting traffic, so proposals arriving immediately after
	// startup find the coordinator role already established. Anything
	// staged here (a coordinator's initial Phase 1A) is committed by the
	// run loop before it first blocks.
	n.recoverFromLog()
	n.applyConfig(rc)
	go n.deliveryLoop()
	go n.run()
	return n, nil
}

// IOGauges returns the node's group-commit instrumentation: the size
// distribution of WAL batches (records per PutBatch) and of staged send
// batches (messages per transport flush).
func (n *Node) IOGauges() (wal, send *metrics.BatchGauge) {
	return &n.walGauge, &n.sendGauge
}

// Ring returns the ring identifier.
func (n *Node) Ring() transport.RingID { return n.ring }

// DeliveryBatches returns the ordered stream of decided instances
// (including skip markers) as batches of contiguous instances. Batches are
// never empty and are closed when the node stops. Consumers should hand
// exhausted batches back with ReleaseBatch so their buffers are reused.
// At most one of DeliveryBatches and Deliveries may be consumed.
//
// The stream also closes — with the node still running its acceptor and
// forwarder duties — if the consumer falls so far behind that its
// catch-up range was trimmed from every live acceptor's log
// (FlowStats.CatchupAborted): the lost range is unrecoverable at ring
// level and the consumer must recover via checkpoint transfer
// (Section 5.2).
func (n *Node) DeliveryBatches() <-chan []Delivery { return n.deliverCh }

// ReleaseBatch returns a batch obtained from DeliveryBatches to the node's
// buffer pool and drops the entries' pooled payload references. The caller
// must not touch the slice afterwards; on pooled transports payload bytes
// may recycle once every holder has released, so consumers that keep a
// payload past this call must copy it first (see Value.Buf).
func (n *Node) ReleaseBatch(b []Delivery) {
	if cap(b) == 0 {
		return
	}
	for i := range b {
		b[i].Value.Buf.Release()
		b[i] = Delivery{} // drop payload references held by the pooled array
	}
	select {
	case n.batchFree <- b[:0]:
	default: // pool full; let the GC take it
	}
}

// getBatch returns an empty batch buffer, reusing a released one if
// available.
func (n *Node) getBatch() []Delivery {
	select {
	case b := <-n.batchFree:
		return b
	default:
		return make([]Delivery, 0, deliveryBatchCap)
	}
}

// Deliveries returns the ordered stream of decided instances (including
// skip markers), one message at a time. It adapts DeliveryBatches; use it
// for tests and simple consumers, and the batch form on hot paths. At most
// one of DeliveryBatches and Deliveries may be consumed.
func (n *Node) Deliveries() <-chan Delivery {
	n.perMsgOnce.Do(func() {
		out := make(chan Delivery, n.cfg.DeliverBuffer)
		n.perMsgCh = out
		go func() {
			defer close(out)
			for batch := range n.deliverCh {
				for _, d := range batch {
					if d.Value.Buf != nil {
						// Per-message consumers park deliveries in a
						// buffered channel indefinitely: detach this
						// copy onto the heap so the pooled bytes can
						// recycle when the batch is released below.
						d.Value.Data = append([]byte(nil), d.Value.Data...)
						d.Value.Buf = nil
					}
					// Prefer forwarding: an actively draining consumer
					// receives every buffered delivery even across
					// Stop (as the plain buffered channel did); only a
					// consumer that stopped reading is abandoned.
					select {
					case out <- d:
						continue
					default:
					}
					select {
					case out <- d:
					case <-n.done:
						n.ReleaseBatch(batch)
						return
					}
				}
				n.ReleaseBatch(batch)
			}
		}()
	})
	return n.perMsgCh
}

// Propose multicasts a value on this ring: the value is sent to the ring's
// coordinator, which assigns it a consensus instance. Delivery is not
// guaranteed (fair-lossy semantics); callers retry end-to-end.
func (n *Node) Propose(data []byte) error {
	return n.ProposeValue(transport.Value{
		ID:    transport.MakeValueID(n.id, n.proposeSeq.Add(1)),
		Count: 1,
		Data:  data,
	})
}

// ProposeValue multicasts a fully formed value (caller-chosen id) on this
// ring. Reconfiguration markers use it: their value id must be known to
// every learner before the value is proposed, so the proposer cannot let
// the ring assign one.
func (n *Node) ProposeValue(v transport.Value) error {
	return n.ProposeValueTraced(v, trace.Context{})
}

// ProposeValueTraced is ProposeValue with a trace context: when ctx is
// sampled the proposal frame carries it as an optional trailing header
// and this node records the "forward" hop (the client-side send of the
// value toward the ring's coordinator).
func (n *Node) ProposeValueTraced(v transport.Value, ctx trace.Context) error {
	select {
	case <-n.done:
		return ErrStopped
	default:
	}
	n.mu.Lock()
	coordID := n.rc.Coordinator
	n.mu.Unlock()
	if coordID == 0 {
		return ErrNoCoordinator
	}
	m := transport.Message{
		Kind:  transport.KindProposal,
		Ring:  n.ring,
		Value: v,
		// Seq carries the ORIGINAL proposer: the transport restamps From
		// at every hop, so a proposal forwarded to the real coordinator
		// would otherwise have its admission-control reply (Overloaded)
		// routed to the forwarder instead of the client.
		Seq: uint64(n.id),
	}
	if n.tracer != nil && ctx.Sampled() {
		n.tags.put(v.ID, ctx)
		m.Traces = append(m.Traces, transport.TraceRef{ValueID: v.ID, Ctx: ctx})
		n.tracer.Add(ctx, "forward", uint32(n.ring), 0, v.ID, time.Now(), 0)
	}
	return n.tr.Send(coordID, m)
}

// Stats reports instance counters (decided includes skipped).
func (n *Node) Stats() (decided, skipped uint64) {
	return n.decidedCount.Load(), n.skippedCount.Load()
}

// WALHealth reports group-commit failure accounting: total failed commits,
// whether the node has stepped out of the membership over a persistent WAL
// failure (see Config.CommitFailureBudget), and the most recent commit
// error (empty when the log has never failed).
func (n *Node) WALHealth() (failures uint64, steppedOut bool, lastErr string) {
	if e, ok := n.lastCommitErr.Load().(string); ok {
		lastErr = e
	}
	return n.commitFailCount.Load(), n.steppedOutFlag.Load(), lastErr
}

// Stop shuts down the node. Pending deliveries may be lost.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		n.cancelWatch()
		close(n.done)
		<-n.loopDone
		<-n.deliveryDone
		// Both loops have exited: batches still staged between them can
		// no longer reach a consumer, so drop their pooled references.
		n.releaseQueuedBatches()
		// deliverCh is closed and nothing sends on it anymore; batches
		// still buffered go to whoever drains first. An actively draining
		// consumer keeps receiving its prefix, and what it has not taken
		// by now is dropped here — Stop's documented lossy semantics —
		// so a node whose deliveries were never consumed leaves no
		// pooled buffers outstanding.
	drain:
		for {
			select {
			case b, ok := <-n.deliverCh:
				if !ok {
					break drain
				}
				n.ReleaseBatch(b)
			default:
				break drain
			}
		}
	})
}

// roles returns this process's roles under the current config.
func (n *Node) roles() coord.Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rc.Roles(n.id)
}

func (n *Node) isAcceptor() bool { return n.roles().Has(coord.RoleAcceptor) }
func (n *Node) isLearner() bool  { return n.roles().Has(coord.RoleLearner) }
