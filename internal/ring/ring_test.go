package ring

import (
	"fmt"
	"testing"
	"time"

	"amcast/internal/coord"
	"amcast/internal/netem"
	"amcast/internal/storage"
	"amcast/internal/transport"
)

// cluster wires N processes into one ring for tests. All processes are
// proposer+acceptor+learner unless membersFn overrides.
type cluster struct {
	t       *testing.T
	net     *transport.Network
	svc     *coord.Service
	routers map[transport.ProcessID]*transport.Router
	nodes   map[transport.ProcessID]*Node
	logs    map[transport.ProcessID]storage.Log
	ring    transport.RingID
}

func newCluster(t *testing.T, n int, tweak func(*Config)) *cluster {
	t.Helper()
	c := &cluster{
		t:       t,
		net:     transport.NewNetwork(nil),
		svc:     coord.NewService(),
		routers: make(map[transport.ProcessID]*transport.Router),
		nodes:   make(map[transport.ProcessID]*Node),
		logs:    make(map[transport.ProcessID]storage.Log),
		ring:    1,
	}
	var members []coord.Member
	for i := 1; i <= n; i++ {
		members = append(members, coord.Member{
			ID:    transport.ProcessID(i),
			Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner,
		})
	}
	if err := c.svc.CreateRing(c.ring, members); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		id := transport.ProcessID(i)
		c.start(id, tweak)
	}
	t.Cleanup(c.stopAll)
	return c
}

func (c *cluster) start(id transport.ProcessID, tweak func(*Config)) {
	tr := c.net.Attach(id, netem.SiteLocal)
	router := transport.NewRouter(tr)
	log := storage.NewMemLog()
	cfg := Config{
		Ring:          c.ring,
		Self:          id,
		Router:        router,
		Coord:         c.svc,
		Log:           log,
		RetryInterval: 30 * time.Millisecond,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	node, err := New(cfg)
	if err != nil {
		c.t.Fatal(err)
	}
	c.routers[id] = router
	c.nodes[id] = node
	c.logs[id] = log
}

func (c *cluster) stopAll() {
	for _, n := range c.nodes {
		n.Stop()
	}
	c.net.Close()
}

// crash kills a process: network detach + node stop + coord notification.
func (c *cluster) crash(id transport.ProcessID) {
	c.net.Detach(id)
	c.nodes[id].Stop()
	delete(c.nodes, id)
	c.svc.MarkDown(id)
}

// collect drains count non-skip deliveries from a node.
func collect(t *testing.T, n *Node, count int, timeout time.Duration) []Delivery {
	t.Helper()
	var out []Delivery
	deadline := time.After(timeout)
	for len(out) < count {
		select {
		case d, ok := <-n.Deliveries():
			if !ok {
				t.Fatalf("delivery channel closed after %d/%d", len(out), count)
			}
			if d.Value.Skip {
				continue
			}
			out = append(out, d)
		case <-deadline:
			t.Fatalf("timed out after %d/%d deliveries", len(out), count)
		}
	}
	return out
}

func TestSingleValueDecided(t *testing.T) {
	c := newCluster(t, 3, nil)
	if err := c.nodes[2].Propose([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	for id := transport.ProcessID(1); id <= 3; id++ {
		ds := collect(t, c.nodes[id], 1, 5*time.Second)
		if string(ds[0].Value.Data) != "hello" {
			t.Errorf("node %d delivered %q", id, ds[0].Value.Data)
		}
	}
}

func TestAllLearnersSameOrder(t *testing.T) {
	c := newCluster(t, 3, nil)
	const count = 200
	for i := 0; i < count; i++ {
		proposer := c.nodes[transport.ProcessID(i%3+1)]
		if err := proposer.Propose([]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var sequences [3][]string
	for i := 0; i < 3; i++ {
		ds := collect(t, c.nodes[transport.ProcessID(i+1)], count, 20*time.Second)
		for _, d := range ds {
			sequences[i] = append(sequences[i], string(d.Value.Data))
		}
	}
	for i := 1; i < 3; i++ {
		for j := range sequences[0] {
			if sequences[i][j] != sequences[0][j] {
				t.Fatalf("order diverges at %d: node1=%q node%d=%q",
					j, sequences[0][j], i+1, sequences[i][j])
			}
		}
	}
}

func TestDeliveryInstancesAreOrdered(t *testing.T) {
	c := newCluster(t, 3, nil)
	for i := 0; i < 50; i++ {
		if err := c.nodes[1].Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ds := collect(t, c.nodes[3], 50, 10*time.Second)
	last := uint64(0)
	for _, d := range ds {
		if d.Instance <= last {
			t.Fatalf("instance went backwards: %d after %d", d.Instance, last)
		}
		last = d.Instance
	}
}

func TestVotesLoggedBeforeDecision(t *testing.T) {
	c := newCluster(t, 3, nil)
	if err := c.nodes[1].Propose([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	ds := collect(t, c.nodes[1], 1, 5*time.Second)
	inst := ds[0].Instance
	// A majority of acceptors must hold the logged vote.
	logged := 0
	for id := transport.ProcessID(1); id <= 3; id++ {
		if rec, ok := c.logs[id].Get(inst); ok {
			_, rinst, v, err := decodeAccept(rec)
			if err != nil || rinst != inst || string(v.Data) != "durable" {
				t.Errorf("node %d has corrupt log record", id)
			}
			logged++
		}
	}
	if logged < 2 {
		t.Errorf("only %d acceptors logged the vote, need majority", logged)
	}
}

func TestLearnerOnlyMember(t *testing.T) {
	// Ring: 3 acceptors + 1 pure learner.
	net := transport.NewNetwork(nil)
	defer net.Close()
	svc := coord.NewService()
	members := []coord.Member{
		{ID: 1, Roles: coord.RoleProposer | coord.RoleAcceptor},
		{ID: 2, Roles: coord.RoleAcceptor},
		{ID: 3, Roles: coord.RoleAcceptor},
		{ID: 4, Roles: coord.RoleLearner},
	}
	if err := svc.CreateRing(1, members); err != nil {
		t.Fatal(err)
	}
	var nodes []*Node
	for i := 1; i <= 4; i++ {
		id := transport.ProcessID(i)
		router := transport.NewRouter(net.Attach(id, netem.SiteLocal))
		cfg := Config{Ring: 1, Self: id, Router: router, Coord: svc, RetryInterval: 30 * time.Millisecond}
		if i != 4 {
			cfg.Log = storage.NewMemLog()
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Stop()
		nodes = append(nodes, n)
	}
	if err := nodes[0].Propose([]byte("to-learner")); err != nil {
		t.Fatal(err)
	}
	ds := collect(t, nodes[3], 1, 5*time.Second)
	if string(ds[0].Value.Data) != "to-learner" {
		t.Errorf("learner got %q", ds[0].Value.Data)
	}
}

func TestLearnerWithoutLogRejected(t *testing.T) {
	net := transport.NewNetwork(nil)
	defer net.Close()
	svc := coord.NewService()
	if err := svc.CreateRing(1, []coord.Member{{ID: 1, Roles: coord.RoleAcceptor}}); err != nil {
		t.Fatal(err)
	}
	router := transport.NewRouter(net.Attach(1, netem.SiteLocal))
	if _, err := New(Config{Ring: 1, Self: 1, Router: router, Coord: svc}); err == nil {
		t.Error("acceptor without log should be rejected")
	}
	if _, err := New(Config{Ring: 2, Self: 1, Router: router, Coord: svc}); err == nil {
		t.Error("unknown ring should be rejected")
	}
	if _, err := New(Config{Ring: 1, Self: 9, Router: router, Coord: svc}); err == nil {
		t.Error("non-member should be rejected")
	}
}

func TestSingleMemberRing(t *testing.T) {
	net := transport.NewNetwork(nil)
	defer net.Close()
	svc := coord.NewService()
	members := []coord.Member{{ID: 1, Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner}}
	if err := svc.CreateRing(1, members); err != nil {
		t.Fatal(err)
	}
	router := transport.NewRouter(net.Attach(1, netem.SiteLocal))
	n, err := New(Config{Ring: 1, Self: 1, Router: router, Coord: svc, Log: storage.NewMemLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	for i := 0; i < 10; i++ {
		if err := n.Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ds := collect(t, n, 10, 5*time.Second)
	for i, d := range ds {
		if d.Value.Data[0] != byte(i) {
			t.Errorf("delivery %d = %d", i, d.Value.Data[0])
		}
	}
}

func TestCoordinatorFailover(t *testing.T) {
	c := newCluster(t, 3, nil)
	// Decide some values under the initial coordinator (process 1).
	for i := 0; i < 10; i++ {
		if err := c.nodes[1].Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, c.nodes[2], 10, 5*time.Second)

	// Kill the coordinator; process 2 takes over.
	c.crash(1)

	// New proposals must still decide.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c.nodes[3].Propose([]byte("after-failover")); err != nil && err != ErrNoCoordinator {
			t.Fatal(err)
		}
		select {
		case d := <-c.nodes[3].Deliveries():
			if d.Value.Skip {
				continue
			}
			if string(d.Value.Data) == "after-failover" {
				return
			}
			continue
		case <-time.After(200 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("no decision after coordinator failover")
		}
	}
}

func TestDecisionLossRecoveredByRetransmit(t *testing.T) {
	c := newCluster(t, 3, nil)
	// Block node3's incoming link from node2 (its ring predecessor) so it
	// misses decisions, then heal: gap chasing must catch it up.
	if err := c.nodes[1].Propose([]byte("first")); err != nil {
		t.Fatal(err)
	}
	collect(t, c.nodes[3], 1, 5*time.Second)

	c.net.Block(2, 3)
	for i := 0; i < 5; i++ {
		if err := c.nodes[1].Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Let decisions flow among 1 and 2.
	collect(t, c.nodes[2], 5, 5*time.Second)
	c.net.Unblock(2, 3)

	ds := collect(t, c.nodes[3], 5, 10*time.Second)
	if len(ds) != 5 {
		t.Fatalf("node3 recovered %d/5 values", len(ds))
	}
}

func TestRateLevelingSkips(t *testing.T) {
	c := newCluster(t, 3, func(cfg *Config) {
		cfg.SkipEnabled = true
		cfg.Delta = 10 * time.Millisecond
		cfg.Lambda = 500
	})
	// No proposals: the coordinator must emit skip instances.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case d := <-c.nodes[2].Deliveries():
			if d.Value.Skip && d.Value.Span() >= 1 {
				return // rate leveling works
			}
		case <-deadline:
			t.Fatal("no skip instances generated on idle ring")
		}
	}
}

func TestSkipsInterleaveWithValues(t *testing.T) {
	c := newCluster(t, 3, func(cfg *Config) {
		cfg.SkipEnabled = true
		cfg.Delta = 5 * time.Millisecond
		cfg.Lambda = 200
	})
	for i := 0; i < 20; i++ {
		if err := c.nodes[1].Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// All 20 real values arrive, in order, despite interleaved skips.
	ds := collect(t, c.nodes[3], 20, 10*time.Second)
	for i, d := range ds {
		if d.Value.Data[0] != byte(i) {
			t.Fatalf("value %d out of order", i)
		}
	}
	// The idle ring keeps generating skips; they must reach learners.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, skipped := c.nodes[3].Stats(); skipped > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expected some skipped instances")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTrimProtocolNeedsSafeResp(t *testing.T) {
	// Without replicas answering SafeReq, no trim happens (safe default).
	c := newCluster(t, 3, func(cfg *Config) {
		cfg.TrimInterval = 20 * time.Millisecond
	})
	if err := c.nodes[1].Propose([]byte("x")); err != nil {
		t.Fatal(err)
	}
	collect(t, c.nodes[1], 1, 5*time.Second)
	time.Sleep(100 * time.Millisecond)
	if got := c.logs[1].FirstRetained(); got != 0 {
		t.Errorf("log trimmed to %d without any SafeResp", got)
	}
}

func TestProposeAfterStop(t *testing.T) {
	c := newCluster(t, 3, nil)
	n := c.nodes[3]
	n.Stop()
	delete(c.nodes, 3)
	if err := n.Propose([]byte("late")); err != ErrStopped {
		t.Errorf("Propose after stop = %v, want ErrStopped", err)
	}
}

func TestThroughputManyValues(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := newCluster(t, 3, func(cfg *Config) { cfg.Window = 512 })
	const count = 2000
	go func() {
		for i := 0; i < count; i++ {
			_ = c.nodes[1].Propose([]byte("payload-payload-payload"))
		}
	}()
	ds := collect(t, c.nodes[2], count, 30*time.Second)
	if len(ds) != count {
		t.Fatalf("delivered %d/%d", len(ds), count)
	}
}
