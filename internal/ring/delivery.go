package ring

import (
	"time"

	"amcast/internal/transport"
)

// This file implements the delivery stage: the half of the learner that
// used to live inside the protocol event loop.
//
// Decided instances accumulate (run-loop owned) into n.pending; at burst
// boundaries the loop hands finished batches to a bounded, lag-tracked
// queue drained by a dedicated goroutine (deliveryLoop), which owns every
// potentially blocking channel send. The protocol event loop therefore
// NEVER blocks on a slow subscriber: acceptor voting, forwarding and
// coordinator progress continue at full speed no matter how far behind
// the consumer falls.
//
// A consumer that overruns the queue's lag cap transitions the learner to
// catch-up: the overflowing batch is dropped locally, live deliveries are
// suppressed (the protocol keeps learning decisions and advancing its
// watermarks), and the dropped range [catchupNext, nextDeliver) is
// re-fetched through the existing retransmit path — locally when this
// process is an acceptor, from a peer acceptor otherwise — as the
// consumer drains. Delivery order stays contiguous: the queue holds a
// prefix ending exactly where catch-up resumes.

// enqueueBatch hands one batch of contiguous deliveries to the delivery
// stage without blocking. It reports false when the lag cap is reached —
// the consumer is too far behind and the caller must transition to
// catch-up instead of wedging the event loop. During shutdown batches are
// accepted (and possibly dropped), matching Stop's documented semantics.
func (n *Node) enqueueBatch(b []Delivery) bool {
	if len(b) == 0 {
		return true
	}
	n.dmu.Lock()
	if n.dclosed {
		n.dmu.Unlock()
		// Shutting down; pending deliveries may be lost. Nothing will
		// drain the batch, so drop its payload references here.
		n.ReleaseBatch(b)
		return true
	}
	if n.dlag > 0 && n.dlag+len(b) > n.cfg.DeliverBuffer {
		n.dmu.Unlock()
		return false
	}
	n.dqueue = append(n.dqueue, b)
	n.dlag += len(b)
	n.dmu.Unlock()
	n.dcond.Signal()
	return true
}

// closeDelivery tells the delivery stage to drain what it holds and close
// the delivery channel. Called from the run loop's exit paths.
func (n *Node) closeDelivery() {
	n.dmu.Lock()
	n.dclosed = true
	n.dmu.Unlock()
	n.dcond.Broadcast()
}

// deliveryRoom reports how many more delivery entries the stage accepts
// before the lag cap (approximate: batches already handed to the channel
// are not counted against the cap).
func (n *Node) deliveryRoom() int {
	n.dmu.Lock()
	room := n.cfg.DeliverBuffer - n.dlag
	n.dmu.Unlock()
	if room < 0 {
		room = 0
	}
	return room
}

// deliveryLoop is the dedicated delivery stage: it drains staged batches
// into the delivery channel, absorbing all consumer-side blocking. After
// closeDelivery it keeps draining (a live consumer receives every staged
// decision, as the final flush always did); once done is closed a blocked
// handover is abandoned instead — pending deliveries may be lost on Stop,
// as documented.
func (n *Node) deliveryLoop() {
	defer close(n.deliveryDone)
	defer close(n.deliverCh)
	for {
		n.dmu.Lock()
		for n.dhead == len(n.dqueue) && !n.dclosed {
			n.dcond.Wait()
		}
		if n.dhead == len(n.dqueue) {
			n.dmu.Unlock()
			return
		}
		// O(1) pop via head index (no per-batch copy-down); the backing
		// array resets once fully drained, so the consumed prefix is
		// pinned only while a backlog exists.
		b := n.dqueue[n.dhead]
		n.dqueue[n.dhead] = nil
		n.dhead++
		if n.dhead == len(n.dqueue) {
			n.dqueue = n.dqueue[:0]
			n.dhead = 0
		}
		n.dlag -= len(b)
		n.dmu.Unlock()
		// Prefer the immediate send so an actively draining consumer wins
		// even while the node shuts down.
		select {
		case n.deliverCh <- b:
			continue
		default:
		}
		select {
		case n.deliverCh <- b:
		case <-n.done:
			n.ReleaseBatch(b) // consumer gone; drop the batch's references
			return
		}
	}
}

// releaseQueuedBatches drops every batch still staged in the delivery
// queue. Called by Stop after both loops exited, so nothing concurrently
// touches dqueue.
func (n *Node) releaseQueuedBatches() {
	n.dmu.Lock()
	q := n.dqueue[n.dhead:]
	n.dqueue, n.dhead, n.dlag = nil, 0, 0
	n.dmu.Unlock()
	for _, b := range q {
		if b != nil {
			n.ReleaseBatch(b)
		}
	}
}

// handoffPending hands the accumulated batch to the delivery stage. It
// never blocks: when the stage's lag cap is hit the learner transitions
// to catch-up — the batch is dropped locally and re-fetched through the
// retransmit path once the consumer drains — so a slow subscriber
// degrades only itself. Runs on the event loop; callers must have
// committed the burst's staged votes first (a released delivery must
// never outrun the durability of the votes that decided it).
func (n *Node) handoffPending() {
	if len(n.pending) == 0 || n.commitWedged {
		return
	}
	if n.enqueueBatch(n.pending) {
		n.pending = n.getBatch()
		return
	}
	if !n.inCatchup.Load() {
		n.inCatchup.Store(true)
		n.catchupNext.Store(n.pending[0].Instance)
		n.catchupUnavailFrom = nil
		n.overruns.Add(1)
	}
	n.catchupDropped.Add(uint64(len(n.pending)))
	n.ReleaseBatch(n.pending)
	n.pending = n.getBatch()
}

// finalHandoff runs on the run loop's exit paths: the pending batch is
// force-enqueued past the lag cap (the delivery stage drains it to a
// live consumer before closing the stream, as the old blocking final
// flush did), and a catch-up still in progress is recorded as aborted —
// the stream is about to end with the dropped range unrecovered, and the
// consumer must not mistake that for a complete clean shutdown.
func (n *Node) finalHandoff() {
	if n.commitWedged {
		return // withheld deliveries must never outrun durability
	}
	if len(n.pending) > 0 && !n.inCatchup.Load() {
		n.forceEnqueue(n.pending)
		n.pending = nil
	}
	if n.inCatchup.Load() {
		n.catchupAborted.Add(1)
	}
}

// forceEnqueue stages a batch bypassing the lag cap (exit paths only).
func (n *Node) forceEnqueue(b []Delivery) {
	if len(b) == 0 {
		return
	}
	n.dmu.Lock()
	if n.dclosed {
		n.dmu.Unlock()
		n.ReleaseBatch(b) // stage already closed: the batch is dropped
		return
	}
	n.dqueue = append(n.dqueue, b)
	n.dlag += len(b)
	n.dmu.Unlock()
	n.dcond.Signal()
}

// pumpCatchup advances catch-up once the consumer has drained enough of
// the delivery buffer: the dropped range [catchupNext, nextDeliver) is
// re-fetched through the retransmit path — served locally when this
// process is an acceptor (the accepted map and the stable log hold every
// decided instance below the delivery watermark), requested from a peer
// acceptor otherwise. allowRemote gates the network request to the retry
// tick so a hot event loop does not spam duplicate RetransmitReqs while a
// response is in flight. Runs on the event loop.
func (n *Node) pumpCatchup(allowRemote bool) {
	if !n.inCatchup.Load() || n.commitWedged || n.deliveryClosed() {
		return
	}
	if n.catchupNext.Load() >= n.nextDeliver {
		n.inCatchup.Store(false) // caught up; live delivery resumes seamlessly
		return
	}
	room := n.deliveryRoom()
	if threshold := min(deliveryBatchCap, n.cfg.DeliverBuffer/2); room < max(1, threshold) {
		return // consumer still backlogged; try again next tick
	}
	if n.isAcceptor() {
		n.serveCatchupLocal(room)
		if n.catchupNext.Load() >= n.nextDeliver {
			n.inCatchup.Store(false)
			return
		}
		// Local serving stopped. Re-read the room: if it ran out, the
		// stop was room-limited — do not ask a peer for instances we
		// cannot accept (the zero-room response would read as trim
		// evidence). Only a hole in the local record (a decision learned
		// without our own vote) justifies the remote request.
		room = n.deliveryRoom()
		if room == 0 {
			return
		}
	}
	if !allowRemote {
		return
	}
	target := n.catchupTarget()
	if target == 0 {
		return
	}
	count := uint64(room)
	if c := n.nextDeliver - n.catchupNext.Load(); c < count {
		count = c
	}
	if count > 512 {
		count = 512
	}
	n.send(target, transport.Message{
		Kind:     transport.KindRetransmitReq,
		Ring:     n.ring,
		Instance: n.catchupNext.Load(),
		Count:    uint32(count),
	})
}

// serveCatchupLocal replays decided instances from this acceptor's own
// record into the delivery stage, stopping at the first hole, at the live
// watermark, or when room runs out. catchupNext only advances for entries
// the stage actually accepted.
func (n *Node) serveCatchupLocal(room int) {
	batch := n.getBatch()
	next := n.catchupNext.Load()
	for room > 0 && next < n.nextDeliver {
		v, ok := n.lookupDecided(next)
		if !ok {
			break
		}
		// Accepted-map values are pooled: the batch entry takes its own
		// reference (nil-safe for log-served heap copies).
		v.Buf.Retain()
		batch = append(batch, Delivery{Ring: n.ring, Instance: next, Value: v})
		next += v.Span()
		room--
		if len(batch) >= deliveryBatchCap {
			if !n.enqueueBatch(batch) {
				n.ReleaseBatch(batch)
				return
			}
			n.catchupServed.Add(uint64(len(batch)))
			n.catchupNext.Store(next)
			n.catchupUnavailFrom = nil // progress: stale evidence
			batch = n.getBatch()
		}
	}
	if len(batch) > 0 && n.enqueueBatch(batch) {
		n.catchupServed.Add(uint64(len(batch)))
		n.catchupNext.Store(next)
		n.catchupUnavailFrom = nil // progress invalidates unavailable reports
		return
	}
	n.ReleaseBatch(batch)
}

// lookupDecided returns the decided value of an instance below the
// delivery watermark, from the volatile accepted map or the stable log.
func (n *Node) lookupDecided(inst uint64) (transport.Value, bool) {
	if rec, ok := n.accepted[inst]; ok {
		return rec.value, true
	}
	if n.cfg.Log != nil {
		if rec, ok := n.cfg.Log.Get(inst); ok {
			if _, rinst, v, err := decodeAccept(rec); err == nil && rinst == inst {
				return v, true
			}
		}
	}
	return transport.Value{}, false
}

// peerAcceptors returns the live peer acceptors (excluding self) — the
// single source for retransmission targets and the catch-up abort
// threshold, so the queried set and the abort quorum cannot diverge.
func (n *Node) peerAcceptors() []transport.ProcessID {
	n.mu.Lock()
	defer n.mu.Unlock()
	var peers []transport.ProcessID
	for _, a := range n.rc.AliveAcceptors() {
		if a != n.id {
			peers = append(peers, a)
		}
	}
	return peers
}

// retransmitTarget picks a live peer acceptor to request retransmissions
// from (0 if none).
func (n *Node) retransmitTarget() transport.ProcessID {
	if peers := n.peerAcceptors(); len(peers) > 0 {
		return peers[0]
	}
	return 0
}

// catchupTarget rotates over the live peer acceptors so consecutive
// catch-up requests consult different peers — one acceptor's vote hole
// must not look like a trimmed range.
func (n *Node) catchupTarget() transport.ProcessID {
	peers := n.peerAcceptors()
	if len(peers) == 0 {
		return 0
	}
	n.catchupRR++
	return peers[n.catchupRR%len(peers)]
}

// deliveryClosed reports whether the delivery stream has been closed.
func (n *Node) deliveryClosed() bool {
	n.dmu.Lock()
	defer n.dmu.Unlock()
	return n.dclosed
}

// abortCatchup terminates the delivery stream: every live peer acceptor
// positively reported the catch-up range trimmed, so the dropped
// deliveries are unrecoverable at ring level. Closing the stream is the
// loud failure — the consumer observes end-of-stream and recovers via
// checkpoint transfer (Section 5.2), exactly as the trim quorum's
// Predicate 2 assumes for replicas outside it. The node keeps its
// acceptor and forwarder duties.
func (n *Node) abortCatchup() {
	n.catchupAborted.Add(1)
	n.closeDelivery()
}

// FlowStats reports the delivery stage's flow-control counters.
type FlowStats struct {
	// Lag is the number of delivery entries currently staged between the
	// event loop and the consumer.
	Lag int
	// CatchupActive reports whether the learner is re-fetching dropped
	// deliveries through the retransmit path; CatchupNext is the next
	// instance the consumer still needs (the catch-up watermark).
	CatchupActive bool
	CatchupNext   uint64
	// Overruns counts transitions into catch-up (buffer overruns).
	Overruns uint64
	// DroppedEntries counts delivery entries dropped at overruns (all
	// re-served later through catch-up).
	DroppedEntries uint64
	// ServedEntries counts delivery entries re-served via catch-up.
	ServedEntries uint64
	// CatchupAborted counts delivery streams terminated because the
	// catch-up range was trimmed from every live acceptor (the consumer
	// must recover via checkpoint transfer).
	CatchupAborted uint64
	// ShedProposals counts proposals refused at this coordinator with an
	// Overloaded reply because the proposal queue was full.
	ShedProposals uint64
	// StallFeedback counts merge-stall feedback messages received by this
	// coordinator from learners (adaptive rate leveling).
	StallFeedback uint64
}

// FlowStats snapshots the node's flow-control instrumentation. Safe to
// call from any goroutine.
func (n *Node) FlowStats() FlowStats {
	n.dmu.Lock()
	lag := n.dlag
	n.dmu.Unlock()
	return FlowStats{
		Lag:            lag,
		CatchupActive:  n.inCatchup.Load(),
		CatchupNext:    n.catchupNext.Load(),
		Overruns:       n.overruns.Load(),
		DroppedEntries: n.catchupDropped.Load(),
		ServedEntries:  n.catchupServed.Load(),
		CatchupAborted: n.catchupAborted.Load(),
		ShedProposals:  n.shedCount.Load(),
		StallFeedback:  n.fbCount.Load(),
	}
}

// LambdaNow reports the coordinator's current rate-leveling target λ in
// messages/second (the static Lambda unless AdaptiveSkip moved it).
func (n *Node) LambdaNow() int {
	return int(n.lambdaGauge.Load())
}

// ReportMergeStall sends rate-leveling feedback to this ring's
// coordinator: the deterministic merge waited `stall` on this ring since
// the last report. The coordinator raises its skip cadence (within
// [LambdaMin, LambdaMax]) so lagging rings stop throttling learners that
// also subscribe to faster rings. Safe to call from any goroutine (the
// merge goroutine calls it).
func (n *Node) ReportMergeStall(stall time.Duration) {
	if stall <= 0 {
		return
	}
	n.mu.Lock()
	coordID := n.rc.Coordinator
	n.mu.Unlock()
	if coordID == 0 {
		return
	}
	_ = n.tr.Send(coordID, transport.Message{
		Kind:     transport.KindFlowFeedback,
		Ring:     n.ring,
		Instance: uint64(stall),
	})
}
