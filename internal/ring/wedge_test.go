package ring

import (
	"fmt"
	"testing"
	"time"

	"amcast/internal/storage"
)

// TestWALFailureBudgetStepOut: an acceptor whose WAL fails persistently
// must stop silently wedging the ring and step out (self MarkDown) once its
// commit-failure budget is spent, letting the surviving quorum continue;
// when the disk recovers it must rejoin on its own.
func TestWALFailureBudgetStepOut(t *testing.T) {
	sim := storage.NewSimDisk(storage.NewMemLog(), storage.SSDSpec(), false, 0.0001)
	c := newCluster(t, 3, func(cfg *Config) {
		cfg.RetryInterval = 20 * time.Millisecond
		cfg.CommitFailureBudget = 5
		if cfg.Self == 2 {
			cfg.Log = sim
		}
	})

	// Warm up: everything healthy.
	if err := c.nodes[1].Propose([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	collect(t, c.nodes[1], 1, 5*time.Second)
	collect(t, c.nodes[3], 1, 5*time.Second)

	// The device fills up. Keep proposing so commit attempts burn the
	// budget; the surviving quorum {1,3} must keep deciding throughout.
	sim.SetWriteError(storage.ErrDiskFull)
	stopLoad := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stopLoad:
				return
			default:
			}
			_ = c.nodes[1].Propose([]byte(fmt.Sprintf("v%d", i)))
			time.Sleep(2 * time.Millisecond)
		}
	}()
	defer close(stopLoad)

	deadline := time.Now().Add(10 * time.Second)
	for {
		cfg, _ := c.svc.Ring(c.ring)
		if cfg.Down[2] {
			break
		}
		if time.Now().After(deadline) {
			fails, stepped, lastErr := c.nodes[2].WALHealth()
			t.Fatalf("node 2 never stepped out (failures=%d steppedOut=%v lastErr=%q)", fails, stepped, lastErr)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fails, stepped, lastErr := c.nodes[2].WALHealth()
	if !stepped || fails < 5 || lastErr == "" {
		t.Fatalf("WALHealth after step-out: failures=%d steppedOut=%v lastErr=%q", fails, stepped, lastErr)
	}

	// Liveness on the surviving quorum: fresh proposals still decide.
	if err := c.nodes[3].Propose([]byte("after-stepout")); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range collect(t, c.nodes[3], 50, 10*time.Second) {
		if string(d.Value.Data) == "after-stepout" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("proposal after step-out was not delivered on surviving quorum")
	}

	// Disk recovers: the retained batch commits on a retry tick and the
	// node rejoins without any oracle.
	sim.SetWriteError(nil)
	deadline = time.Now().Add(10 * time.Second)
	for {
		cfg, _ := c.svc.Ring(c.ring)
		if !cfg.Down[2] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node 2 never rejoined after the disk recovered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, stepped, _ := c.nodes[2].WALHealth(); stepped {
		t.Fatal("steppedOut flag should clear after rejoin")
	}
}
