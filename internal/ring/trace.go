package ring

import (
	"sync"
	"time"

	"amcast/internal/trace"
	"amcast/internal/transport"
)

// Trace-context plumbing. The ring protocol's queues (pendingQ, learned,
// accepted) store transport.Values, not Messages, so the sampled trace
// contexts that arrive as optional frame headers are parked in a bounded
// value-id-keyed tag table and re-attached when the value leaves the
// node again (Phase 2, Decision, retransmission). All of it is
// telemetry: the table is best-effort (FIFO eviction) and never feeds
// protocol state.

// tagTableCap bounds the per-node tag table. At a 1% sampling rate this
// covers hundreds of thousands of in-flight proposals; entries evict
// FIFO, so a lost tag merely truncates one trace, never blocks a value.
const tagTableCap = 8192

type traceTags struct {
	mu   sync.Mutex
	m    map[uint64]trace.Context
	fifo []uint64
}

func newTraceTags() *traceTags {
	return &traceTags{m: make(map[uint64]trace.Context, 64)}
}

func (t *traceTags) put(id uint64, ctx trace.Context) {
	if t == nil || id == 0 || !ctx.Sampled() {
		return
	}
	t.mu.Lock()
	if _, ok := t.m[id]; !ok {
		if len(t.fifo) >= tagTableCap {
			delete(t.m, t.fifo[0])
			t.fifo = t.fifo[1:]
		}
		t.fifo = append(t.fifo, id)
	}
	t.m[id] = ctx
	t.mu.Unlock()
}

func (t *traceTags) get(id uint64) (trace.Context, bool) {
	if t == nil || id == 0 {
		return trace.Context{}, false
	}
	t.mu.Lock()
	ctx, ok := t.m[id]
	t.mu.Unlock()
	return ctx, ok
}

// TraceContextOf returns the sampled trace context this node has seen
// for a value id, if any. The Multi-Ring Paxos merge uses it to stamp
// deliveries (telemetry-only; never protocol state).
func (n *Node) TraceContextOf(id uint64) (trace.Context, bool) {
	return n.tags.get(id)
}

// ingestTraces parks the sampled contexts riding an incoming message.
func (n *Node) ingestTraces(m *transport.Message) {
	if n.tracer == nil || len(m.Traces) == 0 {
		return
	}
	for _, tr := range m.Traces {
		n.tags.put(tr.ValueID, tr.Ctx)
	}
}

// eachTrace calls fn for every sampled context attached to v's value id
// — or, for a message-packed value, to each inner value id.
func (n *Node) eachTrace(v transport.Value, fn func(id uint64, ctx trace.Context)) {
	if n.tracer == nil {
		return
	}
	if v.Batched {
		_ = transport.VisitBatch(v.Data, func(iv transport.InstanceValue) {
			if ctx, ok := n.tags.get(iv.Value.ID); ok {
				fn(iv.Value.ID, ctx)
			}
		})
		return
	}
	if ctx, ok := n.tags.get(v.ID); ok {
		fn(v.ID, ctx)
	}
}

// attachTraces re-attaches parked contexts to an outgoing message built
// fresh from a value (Phase 2, Decision). Forwarded messages keep their
// decoded Traces and need no re-attachment.
func (n *Node) attachTraces(m *transport.Message) {
	n.eachTrace(m.Value, func(id uint64, ctx trace.Context) {
		m.Traces = append(m.Traces, transport.TraceRef{ValueID: id, Ctx: ctx})
	})
}

// attachBatchTraces re-attaches parked contexts for a retransmission
// batch, so the catch-up path re-delivers trace context along with the
// decided values it replays.
func (n *Node) attachBatchTraces(m *transport.Message, batch []transport.InstanceValue) {
	if n.tracer == nil {
		return
	}
	for _, iv := range batch {
		n.eachTrace(iv.Value, func(id uint64, ctx trace.Context) {
			m.Traces = append(m.Traces, transport.TraceRef{ValueID: id, Ctx: ctx})
		})
	}
}

// spanNow records a point span (zero duration) for every sampled
// context on v: the value passed through hop `name` at this node.
func (n *Node) spanNow(name string, inst uint64, v transport.Value) {
	if n.tracer == nil {
		return
	}
	var now time.Time
	n.eachTrace(v, func(id uint64, ctx trace.Context) {
		if now.IsZero() {
			now = time.Now()
		}
		n.tracer.Add(ctx, name, uint32(n.ring), inst, id, now, 0)
	})
}

// stagedTrace remembers a sampled vote staged for the current burst's
// group commit, so commitStaged can record one wal-commit span per
// traced value covering the PutBatch (and its fsync) the vote waited on.
type stagedTrace struct {
	id   uint64
	inst uint64
	ctx  trace.Context
}

// traceStagedVote queues wal-commit spans for a vote being staged.
func (n *Node) traceStagedVote(inst uint64, v transport.Value) {
	if n.tracer == nil {
		return
	}
	n.eachTrace(v, func(id uint64, ctx trace.Context) {
		n.stagedTraces = append(n.stagedTraces, stagedTrace{id: id, inst: inst, ctx: ctx})
	})
}
