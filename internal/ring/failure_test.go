package ring

import (
	"fmt"
	"testing"
	"time"

	"amcast/internal/transport"
)

// TestAcceptorCrashWithQuorumLeft verifies progress with one of three
// acceptors down (majority survives).
func TestAcceptorCrashWithQuorumLeft(t *testing.T) {
	c := newCluster(t, 3, nil)
	if err := c.nodes[1].Propose([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	collect(t, c.nodes[1], 1, 5*time.Second)

	c.crash(3) // not the coordinator
	deadline := time.Now().Add(10 * time.Second)
	for {
		_ = c.nodes[1].Propose([]byte("with-2-acceptors"))
		select {
		case d := <-c.nodes[1].Deliveries():
			if !d.Value.Skip && string(d.Value.Data) == "with-2-acceptors" {
				return
			}
		case <-time.After(200 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("no decision with 2/3 acceptors")
		}
	}
}

// TestDoubleFailureBlocksThenRecovers: with 2 of 3 acceptors down no value
// may be decided (no quorum); after one recovers, progress resumes.
func TestDoubleFailureBlocksThenRecovers(t *testing.T) {
	c := newCluster(t, 3, nil)
	if err := c.nodes[1].Propose([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	collect(t, c.nodes[1], 1, 5*time.Second)

	c.crash(2)
	c.crash(3)
	// No quorum: proposals must not be decided.
	_ = c.nodes[1].Propose([]byte("blocked"))
	select {
	case d := <-c.nodes[1].Deliveries():
		if !d.Value.Skip {
			t.Fatalf("decided %q without a quorum!", d.Value.Data)
		}
	case <-time.After(500 * time.Millisecond):
	}

	// One acceptor returns (fresh volatile state, same log).
	c.svc.MarkUp(2)
	c.start(2, nil)
	deadline := time.Now().Add(10 * time.Second)
	for {
		_ = c.nodes[1].Propose([]byte("after-heal"))
		select {
		case d := <-c.nodes[1].Deliveries():
			if !d.Value.Skip && string(d.Value.Data) == "after-heal" {
				return
			}
		case <-time.After(200 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("no decision after quorum healed")
		}
	}
}

// TestCascadingCoordinatorFailures kills coordinators one after another;
// the last remaining pair must still decide (quorum = 2 of 3 acceptors...
// here ring of 5 with majority 3 keeps quorum after two crashes).
func TestCascadingCoordinatorFailures(t *testing.T) {
	c := newCluster(t, 5, nil)
	if err := c.nodes[1].Propose([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	collect(t, c.nodes[5], 1, 5*time.Second)

	c.crash(1) // coordinator -> node 2 takes over
	c.crash(2) // next coordinator -> node 3 takes over

	deadline := time.Now().Add(15 * time.Second)
	for {
		_ = c.nodes[4].Propose([]byte("third-coordinator"))
		select {
		case d := <-c.nodes[5].Deliveries():
			if !d.Value.Skip && string(d.Value.Data) == "third-coordinator" {
				return
			}
		case <-time.After(300 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("no decision after two coordinator crashes")
		}
	}
}

// TestNoDuplicateDeliveries floods a ring while a link flaps; retries and
// retransmissions must never deliver an instance twice or out of order.
func TestNoDuplicateDeliveries(t *testing.T) {
	c := newCluster(t, 3, nil)
	go func() {
		for i := 0; i < 10; i++ {
			c.net.Block(1, 2)
			time.Sleep(20 * time.Millisecond)
			c.net.Unblock(1, 2)
			time.Sleep(30 * time.Millisecond)
		}
	}()
	const count = 100
	go func() {
		for i := 0; i < count; i++ {
			_ = c.nodes[3].Propose([]byte(fmt.Sprintf("v%03d", i)))
			time.Sleep(2 * time.Millisecond)
		}
	}()
	seen := make(map[uint64]bool)
	var last uint64
	got := 0
	deadline := time.After(30 * time.Second)
	for got < count*80/100 { // some proposals may be shed during flaps
		select {
		case d := <-c.nodes[3].Deliveries():
			if d.Value.Skip {
				continue
			}
			if seen[d.Instance] {
				t.Fatalf("instance %d delivered twice", d.Instance)
			}
			if d.Instance <= last {
				t.Fatalf("instance %d after %d", d.Instance, last)
			}
			seen[d.Instance] = true
			last = d.Instance
			got++
		case <-deadline:
			t.Fatalf("only %d/%d deliveries", got, count)
		}
	}
}

// TestBatchingPreservesProposalOrderPerProposer checks FIFO of one
// proposer's values under batching.
func TestBatchingPreservesProposalOrderPerProposer(t *testing.T) {
	c := newCluster(t, 3, func(cfg *Config) { cfg.BatchBytes = 8 << 10 })
	const count = 150
	for i := 0; i < count; i++ {
		if err := c.nodes[2].Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Batched instances carry multiple values; unpack in order.
	var values []byte
	deadline := time.After(15 * time.Second)
	for len(values) < count {
		select {
		case d := <-c.nodes[1].Deliveries():
			if d.Value.Skip {
				continue
			}
			if d.Value.Batched {
				sub, err := transport.DecodeBatch(d.Value.Data)
				if err != nil {
					t.Fatal(err)
				}
				for _, iv := range sub {
					values = append(values, iv.Value.Data[0])
				}
			} else {
				values = append(values, d.Value.Data[0])
			}
		case <-deadline:
			t.Fatalf("got %d/%d values", len(values), count)
		}
	}
	for i := 0; i < count; i++ {
		if values[i] != byte(i) {
			t.Fatalf("value %d out of order (got %d)", i, values[i])
		}
	}
}
