package ring

import "amcast/internal/transport"

// proposalQueue is the coordinator's FIFO of queued proposals, backed by a
// growable power-of-two circular buffer (the pattern internal/smr uses for
// client windows). The previous `q = q[1:]` re-slicing made every pop pin
// the backing array and cost O(n) amortized copying once append wrapped;
// here pops are O(1) and popped slots are zeroed so the buffer never pins
// payload bytes of values already proposed.
type proposalQueue struct {
	buf  []transport.Value // len(buf) is a power of two
	head int               // index of the oldest element
	n    int               // elements queued
}

// len reports the number of queued values.
func (q *proposalQueue) len() int { return q.n }

// push appends v, growing the buffer when full. The queue takes its own
// payload reference; pop transfers it to the caller.
func (q *proposalQueue) push(v transport.Value) {
	if q.n == len(q.buf) {
		q.grow()
	}
	v.Buf.Retain()
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
}

// pop removes and returns the oldest value, transferring the queue's
// payload reference to the caller. Callers check len first.
func (q *proposalQueue) pop() transport.Value {
	v := q.buf[q.head]
	q.buf[q.head] = transport.Value{} // release payload reference
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v
}

// peek returns a pointer to the oldest value without removing it.
func (q *proposalQueue) peek() *transport.Value {
	return &q.buf[q.head]
}

// grow doubles the buffer, unwrapping the circular contents.
func (q *proposalQueue) grow() {
	size := len(q.buf) * 2
	if size == 0 {
		size = 64
	}
	buf := make([]transport.Value, size)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = buf
	q.head = 0
}
