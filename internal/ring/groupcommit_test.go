package ring

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"amcast/internal/coord"
	"amcast/internal/netem"
	"amcast/internal/storage"
	"amcast/internal/transport"
)

// voteSend is one vote-bearing message observed leaving an acceptor: a
// Phase 2 forward (carrying the acceptor's fresh vote) or a Decision the
// acceptor originated (its vote completed the majority).
type voteSend struct {
	instance uint64
	value    []byte
	durable  bool // was the vote durable in the log at send time?
}

// captureTransport wraps a transport and records every vote-bearing
// message the wrapped process emits, checking against the log *at send
// time* whether the vote it carries was durable — the group-commit
// barrier's invariant.
type captureTransport struct {
	transport.Transport
	self  transport.ProcessID
	inner transport.BatchSender
	check func(instance uint64) bool

	mu    sync.Mutex
	votes []voteSend
}

var _ transport.BatchSender = (*captureTransport)(nil)

func newCaptureTransport(tr transport.Transport, self transport.ProcessID, check func(uint64) bool) *captureTransport {
	bs, ok := tr.(transport.BatchSender)
	if !ok {
		panic("captureTransport: inner transport must batch")
	}
	return &captureTransport{Transport: tr, self: self, inner: bs, check: check}
}

func (c *captureTransport) record(m *transport.Message) {
	carriesVote := m.Kind == transport.KindPhase2 ||
		(m.Kind == transport.KindDecision && m.Seq == uint64(c.self))
	if !carriesVote {
		return
	}
	v := voteSend{
		instance: m.Instance,
		value:    append([]byte(nil), m.Value.Data...),
		durable:  c.check(m.Instance),
	}
	c.mu.Lock()
	c.votes = append(c.votes, v)
	c.mu.Unlock()
}

func (c *captureTransport) Send(to transport.ProcessID, m transport.Message) error {
	c.record(&m)
	return c.Transport.Send(to, m)
}

func (c *captureTransport) SendBatch(msgs []transport.Message) error {
	for i := range msgs {
		c.record(&msgs[i])
	}
	return c.inner.SendBatch(msgs)
}

func (c *captureTransport) snapshot() []voteSend {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]voteSend(nil), c.votes...)
}

// failLog wraps a Log with switchable write failure, recording which
// instances it rejected.
type failLog struct {
	inner storage.Log

	mu       sync.Mutex
	failing  bool
	rejected map[uint64]bool
}

var errInjected = errors.New("injected log failure")

func newFailLog(inner storage.Log) *failLog {
	return &failLog{inner: inner, rejected: make(map[uint64]bool)}
}

func (f *failLog) fail() {
	f.mu.Lock()
	f.failing = true
	f.mu.Unlock()
}

func (f *failLog) heal() {
	f.mu.Lock()
	f.failing = false
	f.mu.Unlock()
}

func (f *failLog) rejectedInstances() map[uint64]bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[uint64]bool, len(f.rejected))
	for k := range f.rejected {
		out[k] = true
	}
	return out
}

func (f *failLog) Put(instance uint64, record []byte) error {
	return f.PutBatch([]storage.Record{{Instance: instance, Data: record}})
}

func (f *failLog) PutBatch(recs []storage.Record) error {
	f.mu.Lock()
	if f.failing {
		for _, r := range recs {
			f.rejected[r.Instance] = true
		}
		f.mu.Unlock()
		return errInjected
	}
	f.mu.Unlock()
	return f.inner.PutBatch(recs)
}

func (f *failLog) Get(instance uint64) ([]byte, bool) { return f.inner.Get(instance) }
func (f *failLog) Trim(upTo uint64) error             { return f.inner.Trim(upTo) }
func (f *failLog) FirstRetained() uint64              { return f.inner.FirstRetained() }
func (f *failLog) Sync() error                        { return f.inner.Sync() }
func (f *failLog) Close() error                       { return f.inner.Close() }

// startObservedRing wires a 3-process ring whose process 2 uses the given
// log and has its outbound traffic captured.
func startObservedRing(t *testing.T, log2 storage.Log) (nodes map[transport.ProcessID]*Node, cap2 *captureTransport, net *transport.Network) {
	t.Helper()
	net = transport.NewNetwork(nil)
	svc := coord.NewService()
	var members []coord.Member
	for i := 1; i <= 3; i++ {
		members = append(members, coord.Member{
			ID:    transport.ProcessID(i),
			Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner,
		})
	}
	if err := svc.CreateRing(1, members); err != nil {
		t.Fatal(err)
	}
	nodes = make(map[transport.ProcessID]*Node)
	for i := 1; i <= 3; i++ {
		id := transport.ProcessID(i)
		tr := net.Attach(id, netem.SiteLocal)
		var log storage.Log = storage.NewMemLog()
		if id == 2 {
			log = log2
			cap2 = newCaptureTransport(tr, id, func(inst uint64) bool {
				_, ok := log2.Get(inst)
				return ok
			})
			tr = cap2
		}
		router := transport.NewRouter(tr)
		n, err := New(Config{
			Ring: 1, Self: id, Router: router, Coord: svc, Log: log,
			RetryInterval: 30 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = n
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
		net.Close()
	})
	return nodes, cap2, net
}

// TestGroupCommitBarrierForwardImpliesDurable is the core barrier
// invariant: every vote-bearing message an acceptor releases carries a
// vote that was already durable when the message left the process.
func TestGroupCommitBarrierForwardImpliesDurable(t *testing.T) {
	fl := newFailLog(storage.NewMemLog())
	nodes, cap2, _ := startObservedRing(t, fl)

	for i := 0; i < 30; i++ {
		if err := nodes[1].Propose([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, nodes[3], 30, 10*time.Second)

	before := cap2.snapshot()
	if len(before) == 0 {
		t.Fatal("no vote-bearing messages captured before failure")
	}
	for i, v := range before {
		if !v.durable {
			t.Fatalf("vote %d (instance %d) left node 2 before it was durable", i, v.instance)
		}
	}
}

// TestGroupCommitBarrierDropsSendsOnLogFailure kills the log between
// staging and commit (PutBatch rejects the batch) and asserts no vote
// that failed to persist was ever forwarded.
func TestGroupCommitBarrierDropsSendsOnLogFailure(t *testing.T) {
	fl := newFailLog(storage.NewMemLog())
	nodes, cap2, _ := startObservedRing(t, fl)

	for i := 0; i < 10; i++ {
		if err := nodes[1].Propose([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, nodes[3], 10, 10*time.Second)

	// From here on node 2's log rejects every batch: votes stage, the
	// commit fails, and the staged forwards must be dropped wholesale.
	fl.fail()
	for i := 0; i < 20; i++ {
		if err := nodes[1].Propose([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(500 * time.Millisecond) // several retry rounds re-stage votes

	rejected := fl.rejectedInstances()
	if len(rejected) == 0 {
		t.Fatal("failure injection never rejected a vote")
	}
	for i, v := range cap2.snapshot() {
		if !v.durable {
			t.Errorf("vote %d (instance %d) was forwarded while un-durable", i, v.instance)
		}
		if v.instance != 0 && rejected[v.instance] {
			// A rejected instance may appear only if an *earlier*
			// successful commit made it durable (re-proposals); the
			// durable flag above already proves that. A rejected,
			// never-durable instance must never be forwarded.
			if _, ok := fl.Get(v.instance); !ok {
				t.Errorf("rejected instance %d escaped node 2", v.instance)
			}
		}
	}
}

// TestGroupCommitCrashRecovery crashes a FileWAL-backed acceptor without
// a clean close mid-traffic, replays its WAL from disk, and asserts every
// vote the successor received was durable: the records are all present
// and carry the forwarded values (Section 5.1 at batch granularity).
func TestGroupCommitCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	wal, err := storage.OpenWAL(dir, storage.WALOptions{Mode: storage.SyncEveryPut})
	if err != nil {
		t.Fatal(err)
	}
	nodes, cap2, net := startObservedRing(t, wal)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	proposer := nodes[1]
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = proposer.Propose([]byte(fmt.Sprintf("value-%04d", i)))
			if i%32 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	// Let traffic flow, then crash node 2 mid-stream: detach from the
	// network and stop the loop without closing the WAL — whatever the
	// group commit had not fsynced is lost, as in a real crash.
	time.Sleep(300 * time.Millisecond)
	net.Detach(2)
	nodes[2].Stop() // second Stop from cleanup is a no-op
	close(stop)
	wg.Wait()

	captured := cap2.snapshot()
	if len(captured) == 0 {
		t.Fatal("no vote-bearing messages captured before the crash")
	}

	// Replay the crashed acceptor's WAL from disk (fresh handle; the old
	// one is abandoned un-closed) and compare against what the successor
	// received.
	replay, err := storage.OpenWAL(dir, storage.WALOptions{Mode: storage.SyncEveryPut})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = replay.Close() }()
	for i, v := range captured {
		if !v.durable {
			t.Errorf("vote %d (instance %d) left node 2 before its group commit", i, v.instance)
		}
		rec, ok := replay.Get(v.instance)
		if !ok {
			t.Errorf("vote %d: instance %d forwarded but absent from the replayed WAL", i, v.instance)
			continue
		}
		_, rinst, val, err := decodeAccept(rec)
		if err != nil || rinst != v.instance {
			t.Errorf("vote %d: corrupt WAL record for instance %d: %v", i, v.instance, err)
			continue
		}
		if !bytes.Equal(val.Data, v.value) {
			t.Errorf("vote %d: WAL value %q != forwarded value %q", i, val.Data, v.value)
		}
	}
	t.Logf("verified %d forwarded votes against the replayed WAL", len(captured))
}

// TestGroupCommitWedgeWithholdsDeliveries proves deliveries never outrun
// durability even when the log fails: a decision learned in a burst whose
// group commit failed stays pending until the retained batch commits.
func TestGroupCommitWedgeWithholdsDeliveries(t *testing.T) {
	net := transport.NewNetwork(nil)
	defer net.Close()
	svc := coord.NewService()
	members := []coord.Member{{ID: 1, Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner}}
	if err := svc.CreateRing(1, members); err != nil {
		t.Fatal(err)
	}
	fl := newFailLog(storage.NewMemLog())
	router := transport.NewRouter(net.Attach(1, netem.SiteLocal))
	n, err := New(Config{
		Ring: 1, Self: 1, Router: router, Coord: svc, Log: fl,
		RetryInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()

	// Sanity: deliveries flow while the log works.
	if err := n.Propose([]byte("healthy")); err != nil {
		t.Fatal(err)
	}
	collect(t, n, 1, 5*time.Second)

	// Single-member ring: the proposal decides locally in the same burst
	// whose commit now fails — the delivery must be withheld.
	fl.fail()
	if err := n.Propose([]byte("wedged")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-n.Deliveries():
		t.Fatalf("delivery %q released while its vote was un-durable", d.Value.Data)
	case <-time.After(300 * time.Millisecond):
	}

	// Heal the log: the retained batch commits on the next burst (retry
	// tick) and the withheld delivery is released.
	fl.heal()
	ds := collect(t, n, 1, 5*time.Second)
	if string(ds[0].Value.Data) != "wedged" {
		t.Fatalf("released %q, want the withheld delivery", ds[0].Value.Data)
	}
	if _, ok := fl.Get(ds[0].Instance); !ok {
		t.Fatal("released delivery's vote still not durable")
	}
}
