package ring

import (
	"amcast/internal/bufpool"
	"amcast/internal/transport"
)

// This file owns the ring node's side of the pooled-buffer ownership
// contract (see README "Memory discipline").
//
// Messages arriving over a pooled transport (TCP) carry a read-block
// reference in Message.Block whose payload slices alias the block. The
// run loop cannot let those aliases ride into long-lived state — the
// block recycles at the end of the burst — so on entry every message is
// interned: hot-path kinds (Proposal, Phase2, Decision) have Value.Data
// copied ONCE into a refcounted size-class buffer (Value.Buf) that every
// downstream holder shares by taking its own reference, and everything
// else is detached onto the heap (cold paths: elections, catch-up,
// trim). The burst owns the block reference and the interned buffer's
// creation reference; both are dropped by releaseBurst after the burst's
// group commit and staged flush complete.
//
// Reference holders and their release points:
//
//	pendingQ entry      push retains; pop transfers to the caller
//	inFlight flight     released when the slot frees (decided/stale/exit)
//	accepted map        released on overwrite, trim, or exit
//	learned map         transfers to the pending Delivery on drain,
//	                    released if delivery is suppressed
//	Delivery entry      released by ReleaseBatch
//	staged send         retained by send, released by commitStaged
//	WAL record (pooled) tracked in walBufs, released after PutBatch

// internInbound pins one inbound message's payload for use beyond the
// current read block. In-process transports never attach a block; their
// messages arrive either with plain heap slices (Value.Buf nil) or —
// when the sender's payload was pooled, e.g. a coordinator's packed
// batch — with Value.Data aliasing a pooled buffer whose reference the
// transport retained per delivered copy (Message.RetainRefs). Both pass
// through as-is: consume parks the transferred reference with the burst
// and downstream holders retain their own, exactly as on the TCP path.
//
//lint:pooled
func (n *Node) internInbound(m *transport.Message) {
	if m.Block == nil {
		return
	}
	switch m.Kind {
	case transport.KindProposal, transport.KindPhase2, transport.KindDecision:
		if len(m.Value.Data) > 0 {
			buf := bufpool.Copy(m.Value.Data)
			m.Value.Data = buf.Bytes()
			m.Value.Buf = buf
		}
		if len(m.Payload) > 0 {
			m.Payload = append([]byte(nil), m.Payload...)
		}
	default:
		// Cold kinds (Phase 1, retransmission, trim): plain heap copies.
		m.DetachAlias()
	}
}

// consume interns and dispatches one inbound message, parking its pooled
// references for release once the burst's group commit and staged flush
// are done.
func (n *Node) consume(m transport.Message) {
	n.internInbound(&m)
	if m.Block != nil {
		n.burstRefs = append(n.burstRefs, m.Block)
		m.Block = nil // the burst owns the block ref, not the handlers
	}
	if m.Value.Buf != nil {
		n.burstRefs = append(n.burstRefs, m.Value.Buf)
	}
	n.handle(m)
}

// releaseBurst drops the read-block and interned-value references owned
// by the burst just drained. Every holder that outlives the burst took
// its own reference, so this is the point where a payload nobody kept
// returns to the pool.
func (n *Node) releaseBurst() {
	for i, b := range n.burstRefs {
		b.Release()
		n.burstRefs[i] = nil
	}
	n.burstRefs = n.burstRefs[:0]
}

// releaseRunState drops every pooled reference still held by run-loop
// state when the event loop exits, so a stopped node leaves no buffers
// outstanding. Runs after the final commitStaged/finalHandoff, with the
// delivery stage's own cleanup handled by Stop.
func (n *Node) releaseRunState() {
	for _, rec := range n.accepted {
		rec.value.Buf.Release()
	}
	for _, v := range n.learned {
		v.Buf.Release()
	}
	for _, f := range n.inFlight {
		f.value.Buf.Release()
	}
	for n.pendingQ.len() > 0 {
		v := n.pendingQ.pop()
		v.Buf.Release()
	}
	for i := range n.pending {
		n.pending[i].Value.Buf.Release()
		n.pending[i] = Delivery{}
	}
	n.releaseWALBufs()
	for i := range n.stagedSends {
		n.stagedSends[i].Value.Buf.Release()
		n.stagedSends[i] = transport.Message{}
	}
	n.stagedSends = n.stagedSends[:0]
	n.releaseBurst()
}

// releaseWALBufs returns the pooled buffers backing committed (or
// abandoned) WAL records to the pool. Only called after PutBatch
// succeeded (the log copied the records) or on exit.
func (n *Node) releaseWALBufs() {
	for i, b := range n.walBufs {
		b.Release()
		n.walBufs[i] = nil
	}
	n.walBufs = n.walBufs[:0]
}
