package ring

import (
	"fmt"
	"testing"
	"time"

	"amcast/internal/netem"
	"amcast/internal/trace"
	"amcast/internal/transport"
)

// tracedCluster wires one span recorder per node (sampling everything).
func tracedCluster(t *testing.T, n int) (*cluster, map[transport.ProcessID]*trace.Recorder) {
	t.Helper()
	recs := make(map[transport.ProcessID]*trace.Recorder)
	c := newCluster(t, n, func(cfg *Config) {
		rec := trace.NewRecorder(fmt.Sprintf("n%d", cfg.Self), 512)
		rec.SetSampling(1)
		recs[cfg.Self] = rec
		cfg.Tracer = rec
	})
	return c, recs
}

// spansOf returns a recorder's spans for one trace id.
func spansOf(rec *trace.Recorder, traceID uint64) []trace.Span {
	var out []trace.Span
	for _, s := range rec.Spans() {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}

func hasSpan(spans []trace.Span, name string) bool {
	for _, s := range spans {
		if s.Name == name {
			return true
		}
	}
	return false
}

// TestTraceSurvivesForwardedProposal sends a traced proposal to a
// NON-coordinator ring node: the node must forward it to the coordinator
// with the trace header intact (the transport restamps From at each hop,
// never the optional trailing headers), record a "forward" span, and the
// decided value's context must reach every learner's tag table.
func TestTraceSurvivesForwardedProposal(t *testing.T) {
	c, recs := tracedCluster(t, 3)

	// Find a non-coordinator: the forward path only triggers when a
	// proposal lands away from the coordinator.
	var nonCoord transport.ProcessID
	deadline := time.Now().Add(5 * time.Second)
	for nonCoord == 0 {
		for id, n := range c.nodes {
			n.mu.Lock()
			coordID := n.rc.Coordinator
			n.mu.Unlock()
			if coordID != 0 && coordID != id {
				nonCoord = id
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no coordinator elected")
		}
	}

	ctx := trace.Context{TraceID: 0xabcd, SpanID: 0xef01, Flags: trace.FlagSampled}
	v := transport.Value{ID: 7777, Data: []byte("fwd")}
	client := c.net.Attach(99, netem.SiteLocal)
	err := client.Send(nonCoord, transport.Message{
		Kind:   transport.KindProposal,
		Ring:   c.ring,
		Seq:    99, // original proposer, preserved across forwards
		Value:  v,
		Traces: []transport.TraceRef{{ValueID: v.ID, Ctx: ctx}},
	})
	if err != nil {
		t.Fatal(err)
	}

	for id := transport.ProcessID(1); id <= 3; id++ {
		ds := collect(t, c.nodes[id], 1, 5*time.Second)
		if ds[0].Value.ID != v.ID {
			t.Fatalf("node %d delivered value %d, want %d", id, ds[0].Value.ID, v.ID)
		}
		got, ok := c.nodes[id].TraceContextOf(v.ID)
		if !ok || got != ctx {
			t.Fatalf("node %d lost trace context: got %+v ok=%v", id, got, ok)
		}
	}
	if !hasSpan(spansOf(recs[nonCoord], ctx.TraceID), "forward") {
		t.Fatalf("non-coordinator %d recorded no forward span", nonCoord)
	}
	var all []trace.Span
	for _, rec := range recs {
		all = append(all, spansOf(rec, ctx.TraceID)...)
	}
	for _, name := range []string{"forward", "vote", "wal-commit", "decide"} {
		if !hasSpan(all, name) {
			t.Fatalf("trace missing %q span; have %+v", name, all)
		}
	}
}

// TestTraceSurvivesRetransmitCatchup blocks a learner's incoming ring
// link so it misses traced decisions, then heals the link: the catch-up
// retransmission must re-deliver the trace contexts along with the
// decided values it replays.
func TestTraceSurvivesRetransmitCatchup(t *testing.T) {
	c, _ := tracedCluster(t, 3)
	rec1 := c.nodes[1].tracer

	first := transport.Value{ID: 9000, Data: []byte("first")}
	if err := c.nodes[1].ProposeValueTraced(first, trace.Context{TraceID: 900, SpanID: 901, Flags: trace.FlagSampled}); err != nil {
		t.Fatal(err)
	}
	collect(t, c.nodes[3], 1, 5*time.Second)

	c.net.Block(2, 3)
	ctxs := make(map[uint64]trace.Context)
	for i := 0; i < 5; i++ {
		id := uint64(9001 + i)
		ctx := trace.Context{TraceID: rec1.NextID(), SpanID: rec1.NextID(), Flags: trace.FlagSampled}
		ctxs[id] = ctx
		if err := c.nodes[1].ProposeValueTraced(transport.Value{ID: id, Data: []byte{byte(i)}}, ctx); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, c.nodes[2], 5, 5*time.Second)
	c.net.Unblock(2, 3)

	ds := collect(t, c.nodes[3], 5, 10*time.Second)
	if len(ds) != 5 {
		t.Fatalf("node3 recovered %d/5 values", len(ds))
	}
	for id, want := range ctxs {
		got, ok := c.nodes[3].TraceContextOf(id)
		if !ok {
			t.Fatalf("node3 has no trace context for caught-up value %d", id)
		}
		if got != want {
			t.Fatalf("value %d: context %+v != %+v", id, got, want)
		}
	}
}
