package ring

import (
	"sort"
	"time"

	"amcast/internal/coord"
	"amcast/internal/storage"
	"amcast/internal/transport"
)

// run is the node's single event loop: it owns all protocol state, so no
// handler needs locking beyond the rc snapshot shared with Propose.
//
// Handlers do not write the log or the network directly: they stage
// durability into walBatch and output into stagedSends, and the loop
// commits both once per drained burst (commitStaged) — one group-commit
// fsync and one coalesced transport flush instead of a write barrier and
// a syscall per message.
func (n *Node) run() {
	defer close(n.loopDone)

	// The retry ticker fires at a quarter of the retry interval so phase-1
	// re-runs and gap probes react quickly after startup or elections; the
	// re-proposal cutoff below still honours the full RetryInterval.
	retry := time.NewTicker(n.cfg.RetryInterval / 4)
	defer retry.Stop()

	var skipC <-chan time.Time
	if n.cfg.SkipEnabled {
		t := time.NewTicker(n.cfg.Delta)
		defer t.Stop()
		skipC = t.C
	}
	var trimC <-chan time.Time
	if n.cfg.TrimInterval > 0 {
		t := time.NewTicker(n.cfg.TrimInterval)
		defer t.Stop()
		trimC = t.C
	}

	// New may have staged work (a coordinator's startup Phase 1A);
	// release it before first blocking.
	n.commitStaged()

	for {
		// With deliveries pending and the channel previously full, arm a
		// send case so the batch goes out the moment the consumer frees
		// a slot — decided messages never wait for the next event or
		// timer tick.
		var flushC chan []Delivery
		if len(n.pending) > 0 && !n.commitWedged {
			flushC = n.deliverCh
		}
		select {
		case flushC <- n.pending:
			n.pending = n.getBatch()
			continue
		case <-n.done:
			n.commitStaged()
			n.flushBestEffort()
			close(n.deliverCh)
			return
		case cfg, ok := <-n.watch:
			if !ok {
				n.commitStaged()
				n.flushFinal()
				close(n.deliverCh)
				return
			}
			n.applyConfig(cfg)
		case m, ok := <-n.in:
			if !ok {
				n.commitStaged()
				n.flushFinal()
				close(n.deliverCh)
				return
			}
			n.handle(m)
			// Drain whatever else already arrived before committing, so
			// one WAL group commit and one coalesced transport flush
			// cover a burst of messages instead of paying a write
			// barrier and a syscall per message.
		drain:
			for drained := 0; drained < 128; drained++ {
				select {
				case m, more := <-n.in:
					if !more {
						n.commitStaged()
						n.flushFinal()
						close(n.deliverCh)
						return
					}
					n.handle(m)
				default:
					break drain
				}
			}
		case <-retry.C:
			n.retryUndecided()
			n.chaseGaps()
		case <-skipC:
			n.maybeSkip()
		case <-trimC:
			n.startTrimRound()
		}
		// Commit the burst's staged votes and sends before handing
		// deliveries over: a delivery must never outrun the durability
		// of the votes that decided it.
		n.commitStaged()
		n.flushDeliveries()
	}
}

// commitStaged is the group-commit barrier at the end of a drained burst:
// it makes the burst's staged votes durable with a single PutBatch (one
// buffered write + one fsync under SyncEveryPut) and only then releases
// the staged outbound messages, so every forwarded vote is durable first
// — the paper's Section 5.1 invariant at batch granularity. If the log
// rejects the batch the staged sends are dropped entirely (un-logged
// votes must not circulate; fair-lossy links make dropped messages
// indistinguishable from loss) and commitWedged holds back delivery
// release until the retained batch eventually commits.
func (n *Node) commitStaged() {
	if len(n.walBatch) > 0 {
		if err := n.cfg.Log.PutBatch(n.walBatch); err != nil {
			// Durability failed. Drop the staged sends — un-logged votes
			// must not circulate — but KEEP the staged records: the
			// volatile accepted map already holds these votes and later
			// Phase 1A reports will advertise them, so they must stay
			// queued for the next commit attempt rather than be silently
			// forgotten while the node keeps acting on them. A log that
			// fails persistently wedges this acceptor's output (sends
			// dropped, deliveries withheld) and grows the retained
			// batch and pending deliveries — the honest failure mode
			// for a dead disk.
			n.commitWedged = true
			for i := range n.stagedSends {
				n.stagedSends[i] = transport.Message{}
			}
			n.stagedSends = n.stagedSends[:0]
			return
		}
		n.walGauge.Observe(len(n.walBatch))
		for i := range n.walBatch {
			n.walBatch[i] = storage.Record{} // release record buffers
		}
		n.walBatch = n.walBatch[:0]
	}
	n.commitWedged = false
	if len(n.stagedSends) == 0 {
		return
	}
	n.sendGauge.Observe(len(n.stagedSends))
	if n.batchTr != nil {
		_ = n.batchTr.SendBatch(n.stagedSends)
	} else {
		for i := range n.stagedSends {
			_ = n.tr.Send(n.stagedSends[i].To, n.stagedSends[i])
		}
	}
	for i := range n.stagedSends {
		n.stagedSends[i] = transport.Message{} // release payload references
	}
	n.stagedSends = n.stagedSends[:0]
}

// stagePut queues a durable record for the burst's group commit.
func (n *Node) stagePut(instance uint64, record []byte) {
	n.walBatch = append(n.walBatch, storage.Record{Instance: instance, Data: record})
}

// flushDeliveries hands the pending batch to the delivery channel with a
// non-blocking send. If the channel is full the batch keeps accumulating
// — amortizing channel operations while the consumer works through its
// queue — and the run loop's armed send case delivers it the instant a
// slot frees, so batching never strands a decided message. Backpressure
// comes from learnDecision, which blocks once the pending batch reaches
// its cap (as the per-message path blocked on a full channel).
func (n *Node) flushDeliveries() {
	if len(n.pending) == 0 || n.commitWedged {
		return
	}
	select {
	case n.deliverCh <- n.pending:
		n.pending = n.getBatch()
	default: // channel full: the run-loop send case retries
	}
}

// flushFinal delivers the pending batch before the channel closes when the
// input or watch channel ends. The send blocks (as the per-message path
// blocked) so a live consumer receives every decision already handled;
// Stop's done close releases the loop if the consumer is gone.
func (n *Node) flushFinal() {
	if len(n.pending) == 0 || n.commitWedged {
		return
	}
	select {
	case n.deliverCh <- n.pending:
		n.pending = nil
	case <-n.done:
	}
}

// flushBestEffort is the explicit-Stop flush: done is already closed, so
// hand over the pending batch only if the consumer has room (pending
// deliveries may be lost on Stop, as documented).
func (n *Node) flushBestEffort() {
	if len(n.pending) == 0 || n.commitWedged {
		return
	}
	select {
	case n.deliverCh <- n.pending:
		n.pending = nil
	default:
	}
}

// recoverFromLog rebuilds volatile acceptor state from the stable log after
// a restart (Section 5.1, acceptor recovery).
func (n *Node) recoverFromLog() {
	if n.cfg.Log == nil {
		return
	}
	if rec, ok := n.cfg.Log.Get(promiseInstance); ok {
		n.promised = decodePromise(rec)
	}
}

// applyConfig reacts to a ring configuration change: new successor, and
// possibly a coordinator handover to this process.
func (n *Node) applyConfig(cfg coord.RingConfig) {
	n.mu.Lock()
	n.rc = cfg
	n.mu.Unlock()

	if succ, ok := cfg.Successor(n.id); ok {
		n.succ = succ
	} else {
		n.succ = 0 // single-member ring (or everyone else down)
	}
	wasCoord := n.isCoord
	n.isCoord = cfg.Coordinator == n.id && cfg.Roles(n.id).Has(coord.RoleAcceptor)
	if n.isCoord && (!wasCoord || n.ballot < uint32(cfg.Version)) {
		n.becomeCoordinator(uint32(cfg.Version))
	}
	if !n.isCoord {
		n.phase1Ready = false
	}
}

// becomeCoordinator starts a coordinator term: it pre-executes Phase 1 for
// all instances above the node's decision watermark with a term-unique
// ballot (the ring config version, which only grows).
func (n *Node) becomeCoordinator(ballot uint32) {
	n.ballot = ballot
	n.phase1Ready = false
	n.proposedInWin = 0
	// Restart instance assignment above everything this process knows to
	// be decided; Phase 1B reports may push it further.
	if n.nextInstance < n.maxDecided+1 {
		n.nextInstance = n.maxDecided + 1
	}
	m := transport.Message{
		Kind:     transport.KindPhase1A,
		Ring:     n.ring,
		Ballot:   ballot,
		Instance: n.nextDeliver, // report accepted values from here up
	}
	// Vote for our own Phase 1A (the coordinator is an acceptor).
	n.acceptPhase1(&m)
	if n.succ == 0 {
		// Single-member ring: phase 1 trivially complete.
		n.completePhase1(m)
		return
	}
	n.send(n.succ, m)
}

// handle dispatches one protocol message.
func (n *Node) handle(m transport.Message) {
	switch m.Kind {
	case transport.KindProposal:
		n.handleProposal(m)
	case transport.KindPhase1A:
		n.handlePhase1A(m)
	case transport.KindPhase2:
		n.handlePhase2(m)
	case transport.KindDecision:
		n.handleDecision(m)
	case transport.KindRetransmitReq:
		n.handleRetransmitReq(m)
	case transport.KindRetransmitResp:
		n.handleRetransmitResp(m)
	case transport.KindSafeResp:
		n.handleSafeResp(m)
	case transport.KindTrim:
		n.handleTrim(m)
	}
}

// handleProposal enqueues a value at the coordinator or forwards it there.
func (n *Node) handleProposal(m transport.Message) {
	if !n.isCoord {
		n.mu.Lock()
		coordID := n.rc.Coordinator
		n.mu.Unlock()
		if coordID != 0 && coordID != n.id {
			n.send(coordID, m)
		}
		return
	}
	if n.pendingQ.len() >= n.cfg.MaxPending {
		return // shed load; clients retry end-to-end
	}
	n.pendingQ.push(m.Value)
	n.tryPropose()
}

// tryPropose assigns queued proposals to consensus instances while the
// pipeline window has room, packing several proposals into one instance
// when batching is enabled (message packing, Section 4).
func (n *Node) tryPropose() {
	if !n.isCoord || !n.phase1Ready {
		return
	}
	for n.pendingQ.len() > 0 && len(n.inFlight) < n.cfg.Window {
		v := n.pendingQ.pop()
		if n.cfg.BatchBytes > 0 && n.pendingQ.len() > 0 && !v.Skip {
			v = n.packBatch(v)
		}
		n.proposeValue(v)
	}
}

// packBatch greedily packs queued proposals behind head into one batched
// value of at most BatchBytes payload bytes.
func (n *Node) packBatch(head transport.Value) transport.Value {
	batch := []transport.InstanceValue{{Value: head}}
	size := len(head.Data)
	for n.pendingQ.len() > 0 && size < n.cfg.BatchBytes {
		next := n.pendingQ.peek()
		if next.Skip || size+len(next.Data) > n.cfg.BatchBytes {
			break
		}
		v := n.pendingQ.pop()
		batch = append(batch, transport.InstanceValue{Value: v})
		size += len(v.Data)
	}
	if len(batch) == 1 {
		return head
	}
	return transport.Value{
		ID:      head.ID,
		Batched: true,
		Count:   1,
		Data:    transport.EncodeBatch(batch),
	}
}

// proposeValue runs Phase 2 for one value: the coordinator logs its own
// vote and forwards the combined 2A/2B message.
func (n *Node) proposeValue(v transport.Value) {
	inst := n.nextInstance
	n.nextInstance += v.Span()
	if !v.Skip {
		n.proposedInWin++
	}
	n.inFlight[inst] = &flight{value: v, lastSent: time.Now()}
	n.sendPhase2(inst, v)
}

// recordVote stages the durable vote record for an instance and tracks it
// in the volatile accepted map and its sorted index. The staged record
// commits (group commit) before any message of this burst leaves the node.
func (n *Node) recordVote(ballot uint32, inst uint64, v transport.Value) {
	n.stagePut(inst, encodeAccept(ballot, inst, v))
	if _, ok := n.accepted[inst]; !ok {
		n.acceptedInsert(inst)
	}
	n.accepted[inst] = acceptedRec{ballot: ballot, value: v}
}

// acceptedInsert adds a new instance to the sorted index. Votes arrive in
// almost-increasing instance order, so the append path dominates.
func (n *Node) acceptedInsert(inst uint64) {
	if k := len(n.acceptedIdx); k == 0 || inst > n.acceptedIdx[k-1] {
		n.acceptedIdx = append(n.acceptedIdx, inst)
		return
	}
	i := sort.Search(len(n.acceptedIdx), func(i int) bool { return n.acceptedIdx[i] >= inst })
	if i < len(n.acceptedIdx) && n.acceptedIdx[i] == inst {
		return
	}
	n.acceptedIdx = append(n.acceptedIdx, 0)
	copy(n.acceptedIdx[i+1:], n.acceptedIdx[i:])
	n.acceptedIdx[i] = inst
}

// stagePromise stages the durable record of a raised promise.
func (n *Node) stagePromise() {
	n.stagePut(promiseInstance, encodePromise(n.promised))
}

// sendPhase2 stages the coordinator's vote (durable before sending, as
// recovery requires) and emits the Phase 2A/2B message.
func (n *Node) sendPhase2(inst uint64, v transport.Value) {
	// Durable vote first (Section 5.1) — staged, committed before the
	// message is released.
	n.recordVote(n.ballot, inst, v)
	m := transport.Message{
		Kind:     transport.KindPhase2,
		Ring:     n.ring,
		Ballot:   n.ballot,
		Instance: inst,
		Votes:    1,
		Value:    v,
	}
	n.mu.Lock()
	majority := n.rc.Majority()
	n.mu.Unlock()
	if int(m.Votes) >= majority || n.succ == 0 {
		// Single-acceptor ring: decided immediately.
		n.decide(inst, v, n.id)
		return
	}
	n.send(n.succ, m)
}

// acceptPhase1 applies a Phase 1A message at an acceptor: promise the
// ballot (durably), vote, and attach this acceptor's accepted values so a
// new coordinator can re-propose possibly-chosen values.
func (n *Node) acceptPhase1(m *transport.Message) {
	if !n.isAcceptor() {
		return
	}
	if m.Ballot < n.promised {
		return // no vote for stale ballots
	}
	if m.Ballot > n.promised {
		n.promised = m.Ballot
		n.stagePromise()
	}
	m.Votes++
	// Report accepted values at or above the scan point: the sorted
	// index finds the scan start in O(log n) and walks only instances
	// >= it, instead of scanning the whole accepted map.
	var report []transport.InstanceValue
	start := sort.Search(len(n.acceptedIdx), func(i int) bool { return n.acceptedIdx[i] >= m.Instance })
	for _, inst := range n.acceptedIdx[start:] {
		report = append(report, transport.InstanceValue{Instance: inst, Value: n.accepted[inst].value})
	}
	if len(report) > 0 {
		existing, err := transport.DecodeBatch(m.Payload)
		if err != nil {
			existing = nil
		}
		m.Payload = transport.EncodeBatch(append(existing, report...))
	}
}

// handlePhase1A processes a circulating Phase 1A: the originating
// coordinator completes Phase 1 when the message returns with a majority;
// other acceptors vote and forward.
func (n *Node) handlePhase1A(m transport.Message) {
	if n.isCoord && m.Ballot == n.ballot {
		n.completePhase1(m)
		return
	}
	n.acceptPhase1(&m)
	if n.succ != 0 {
		n.send(n.succ, m)
	}
}

// completePhase1 finishes the coordinator's Phase 1: with a majority of
// promises it re-proposes every reported accepted value (they may have been
// chosen) and opens the pipeline.
func (n *Node) completePhase1(m transport.Message) {
	n.mu.Lock()
	majority := n.rc.Majority()
	n.mu.Unlock()
	if int(m.Votes) < majority {
		// Election failed (stale promises elsewhere); retry with the
		// next config version or by re-running phase 1 on retry tick.
		n.phase1Ready = false
		return
	}
	reported, err := transport.DecodeBatch(m.Payload)
	if err == nil {
		// Re-propose reported values at the new ballot, highest
		// instance first to fix nextInstance.
		for _, iv := range reported {
			if iv.Instance+iv.Value.Span() > n.nextInstance {
				n.nextInstance = iv.Instance + iv.Value.Span()
			}
		}
		for _, iv := range reported {
			if iv.Instance < n.nextDeliver {
				continue // already decided and delivered
			}
			if _, busy := n.inFlight[iv.Instance]; busy {
				continue
			}
			n.inFlight[iv.Instance] = &flight{value: iv.Value, lastSent: time.Now()}
			n.sendPhase2(iv.Instance, iv.Value)
		}
	}
	n.phase1Ready = true
	n.tryPropose()
}

// handlePhase2 is the acceptor/forwarder path for combined Phase 2A/2B.
func (n *Node) handlePhase2(m transport.Message) {
	if !n.isAcceptor() {
		if n.succ != 0 {
			n.send(n.succ, m)
		}
		return
	}
	if m.Ballot < n.promised {
		return // stale coordinator; drop so it cannot gather a majority
	}
	if m.Ballot > n.promised {
		n.promised = m.Ballot
		n.stagePromise()
	}
	// Stage the vote; the group commit at the end of this burst makes it
	// durable before the forward below is released (Section 5.1).
	n.recordVote(m.Ballot, m.Instance, m.Value)
	m.Votes++
	n.mu.Lock()
	majority := n.rc.Majority()
	n.mu.Unlock()
	if int(m.Votes) >= majority {
		n.decide(m.Instance, m.Value, n.id)
		return
	}
	if n.succ != 0 {
		n.send(n.succ, m)
	}
}

// decide converts an instance into a Decision originating at this process
// and applies it locally.
func (n *Node) decide(inst uint64, v transport.Value, origin transport.ProcessID) {
	n.learnDecision(inst, v)
	if n.succ != 0 {
		n.send(n.succ, transport.Message{
			Kind:     transport.KindDecision,
			Ring:     n.ring,
			Instance: inst,
			Value:    v,
			Seq:      uint64(origin),
		})
	}
}

// handleDecision applies a circulating Decision and forwards it until the
// loop closes at its origin.
func (n *Node) handleDecision(m transport.Message) {
	n.learnDecision(m.Instance, m.Value)
	origin := transport.ProcessID(m.Seq)
	if n.succ != 0 && n.succ != origin {
		n.send(n.succ, m)
	}
}

// learnDecision records a decided instance and advances in-order delivery.
func (n *Node) learnDecision(inst uint64, v transport.Value) {
	if inst < n.nextDeliver {
		n.coordObserveDecided(inst)
		return // duplicate (retransmission or second loop)
	}
	if _, ok := n.learned[inst]; ok {
		return
	}
	n.idleTicks = 0
	n.learned[inst] = v
	if end := inst + v.Span() - 1; end > n.maxDecided {
		n.maxDecided = end
	}
	n.coordObserveDecided(inst)
	for {
		val, ok := n.learned[n.nextDeliver]
		if !ok {
			break
		}
		delete(n.learned, n.nextDeliver)
		n.decidedCount.Add(1)
		if val.Skip {
			n.skippedCount.Add(uint64(val.Span()))
		}
		if n.isLearner() {
			n.pending = append(n.pending, Delivery{Ring: n.ring, Instance: n.nextDeliver, Value: val})
			if len(n.pending) >= deliveryBatchCap {
				// Full batch mid-drain (catch-up bursts): hand it over
				// with backpressure before accumulating more. Commit
				// staged votes first — a released delivery must never
				// depend on a vote that is not yet durable — and keep
				// accumulating if the commit is wedged.
				n.commitStaged()
				if n.commitWedged {
					continue
				}
				select {
				case n.deliverCh <- n.pending:
					n.pending = n.getBatch()
				case <-n.done:
					return
				}
			}
		}
		n.nextDeliver += val.Span()
	}
}

// coordObserveDecided releases the pipeline slot for a decided instance.
func (n *Node) coordObserveDecided(inst uint64) {
	if _, ok := n.inFlight[inst]; ok {
		delete(n.inFlight, inst)
		n.tryPropose()
	}
}

// retryUndecided re-proposes instances whose decision is overdue (lost
// messages, successor change mid-flight).
func (n *Node) retryUndecided() {
	if !n.isCoord {
		return
	}
	if !n.phase1Ready {
		// Phase 1 may have been lost in a reconfiguration; re-run it.
		n.becomeCoordinator(n.ballot)
		return
	}
	cutoff := time.Now().Add(-n.cfg.RetryInterval)
	for inst, f := range n.inFlight {
		if inst < n.nextDeliver {
			delete(n.inFlight, inst)
			continue
		}
		if f.lastSent.Before(cutoff) {
			f.lastSent = time.Now()
			n.sendPhase2(inst, f.value)
		}
	}
	n.tryPropose()
}

// chaseGaps requests retransmission of decided-but-missed instances so a
// learner's in-order delivery never stalls behind a lost Decision. When a
// learner has heard nothing for a few ticks (e.g. it just recovered and the
// ring is quiet), it probes an acceptor blindly: the acceptor returns any
// decided instances at or above our cursor, revealing what we missed.
func (n *Node) chaseGaps() {
	gap := n.nextDeliver <= n.maxDecided
	if gap {
		if _, ok := n.learned[n.nextDeliver]; ok {
			return
		}
	} else {
		if !n.isLearner() {
			return
		}
		n.idleTicks++
		if n.idleTicks < 3 {
			return
		}
		n.idleTicks = 0
	}
	n.mu.Lock()
	var target transport.ProcessID
	for _, a := range n.rc.AliveAcceptors() {
		if a != n.id {
			target = a
			break
		}
	}
	n.mu.Unlock()
	if target == 0 {
		return
	}
	count := uint32(512)
	if gap {
		if c := n.maxDecided - n.nextDeliver + 1; c < 512 {
			count = uint32(c)
		}
	}
	n.send(target, transport.Message{
		Kind:     transport.KindRetransmitReq,
		Ring:     n.ring,
		Instance: n.nextDeliver,
		Count:    count,
	})
}

// handleRetransmitReq serves decided values from the acceptor log. Only
// instances below the acceptor's own contiguous decision watermark are
// served: those are stable and their accepted value equals the decision.
func (n *Node) handleRetransmitReq(m transport.Message) {
	if !n.isAcceptor() {
		return
	}
	var batch []transport.InstanceValue
	end := m.Instance + uint64(m.Count)
	for inst := m.Instance; inst < end && inst < n.nextDeliver; inst++ {
		if rec, ok := n.accepted[inst]; ok {
			batch = append(batch, transport.InstanceValue{Instance: inst, Value: rec.value})
			inst += rec.value.Span() - 1
			continue
		}
		if rec, ok := n.cfg.Log.Get(inst); ok {
			if _, rinst, v, err := decodeAccept(rec); err == nil && rinst == inst {
				batch = append(batch, transport.InstanceValue{Instance: inst, Value: v})
				inst += v.Span() - 1
			}
		}
	}
	if len(batch) == 0 {
		return
	}
	n.send(m.From, transport.Message{
		Kind:    transport.KindRetransmitResp,
		Ring:    n.ring,
		Payload: transport.EncodeBatch(batch),
	})
}

// handleRetransmitResp applies retransmitted decisions.
func (n *Node) handleRetransmitResp(m transport.Message) {
	batch, err := transport.DecodeBatch(m.Payload)
	if err != nil {
		return
	}
	for _, iv := range batch {
		n.learnDecision(iv.Instance, iv.Value)
	}
}

// maybeSkip implements rate leveling: if the coordinator proposed fewer
// values than λ·Δ in the last window, it proposes one skip value covering
// the shortfall so learners merging this ring do not stall (Section 4).
func (n *Node) maybeSkip() {
	if !n.isCoord || !n.phase1Ready {
		return
	}
	target := int(float64(n.cfg.Lambda) * n.cfg.Delta.Seconds())
	if target < 1 {
		target = 1
	}
	deficit := target - n.proposedInWin
	n.proposedInWin = 0
	if deficit <= 0 {
		return
	}
	if len(n.inFlight) >= n.cfg.Window {
		return // pipeline saturated; ring is anything but idle
	}
	n.proposeValue(transport.Value{
		ID:    transport.MakeValueID(n.id, n.proposeSeq.Add(1)),
		Skip:  true,
		Count: uint32(deficit),
	})
}

// startTrimRound begins a trim round (Section 5.2): the coordinator asks
// every learner (replica) for its safe instance k[x]p.
func (n *Node) startTrimRound() {
	if !n.isCoord {
		return
	}
	n.safeResps = make(map[transport.ProcessID]uint64)
	n.mu.Lock()
	learners := n.rc.Learners()
	n.mu.Unlock()
	for _, l := range learners {
		n.send(l, transport.Message{Kind: transport.KindSafeReq, Ring: n.ring})
	}
}

// handleSafeResp collects replicas' safe instances; with a quorum Q_T it
// trims at the minimum (Predicate 2: K[x]_T <= k[x]_p for all p in Q_T).
func (n *Node) handleSafeResp(m transport.Message) {
	if !n.isCoord {
		return
	}
	n.safeResps[m.From] = m.Instance
	n.mu.Lock()
	learners := n.rc.Learners()
	acceptors := n.rc.Acceptors()
	n.mu.Unlock()
	quorum := len(learners)/2 + 1
	if len(n.safeResps) < quorum {
		return
	}
	min := uint64(0)
	first := true
	for _, k := range n.safeResps {
		if first || k < min {
			min = k
			first = false
		}
	}
	if min <= n.lastTrim || min == 0 {
		return
	}
	n.lastTrim = min
	for _, a := range acceptors {
		if a == n.id {
			n.applyTrim(min)
			continue
		}
		n.send(a, transport.Message{Kind: transport.KindTrim, Ring: n.ring, Instance: min})
	}
}

// handleTrim applies a trim instruction at an acceptor.
func (n *Node) handleTrim(m transport.Message) {
	if !n.isAcceptor() {
		return
	}
	n.applyTrim(m.Instance)
}

func (n *Node) applyTrim(upTo uint64) {
	_ = n.cfg.Log.Trim(upTo)
	i := sort.Search(len(n.acceptedIdx), func(i int) bool { return n.acceptedIdx[i] > upTo })
	for _, inst := range n.acceptedIdx[:i] {
		delete(n.accepted, inst)
	}
	// Copy down rather than re-slice so the trimmed prefix does not pin
	// the backing array.
	n.acceptedIdx = append(n.acceptedIdx[:0], n.acceptedIdx[i:]...)
}

// send stages a message for transmission on this ring, stamping the ring
// id. Staged messages are released by commitStaged at the end of the
// current burst, after the burst's votes are durable — callers never
// bypass the group-commit barrier.
func (n *Node) send(to transport.ProcessID, m transport.Message) {
	m.Ring = n.ring
	m.To = to
	n.stagedSends = append(n.stagedSends, m)
}
