package ring

import (
	"sort"
	"time"

	"amcast/internal/bufpool"
	"amcast/internal/coord"
	"amcast/internal/storage"
	"amcast/internal/transport"
)

// run is the node's single event loop: it owns all protocol state, so no
// handler needs locking beyond the rc snapshot shared with Propose.
//
// Handlers do not write the log or the network directly: they stage
// durability into walBatch and output into stagedSends, and the loop
// commits both once per drained burst (commitStaged) — one group-commit
// fsync and one coalesced transport flush instead of a write barrier and
// a syscall per message.
//
//lint:eventloop
func (n *Node) run() {
	defer close(n.loopDone)
	// The delivery stage owns deliverCh: tell it to drain what it holds
	// and close the channel once this loop exits.
	defer n.closeDelivery()
	// Drop every pooled buffer reference the loop state still holds, so
	// a stopped node leaves nothing outstanding in the pool. The exit
	// paths run commitStaged and finalHandoff before returning, so only
	// references with no remaining consumer are left by then.
	defer n.releaseRunState()

	// The retry ticker fires at a quarter of the retry interval so phase-1
	// re-runs and gap probes react quickly after startup or elections; the
	// re-proposal cutoff below still honours the full RetryInterval.
	retry := time.NewTicker(n.cfg.RetryInterval / 4)
	defer retry.Stop()

	var skipC <-chan time.Time
	if n.cfg.SkipEnabled {
		t := time.NewTicker(n.cfg.Delta)
		defer t.Stop()
		skipC = t.C
	}
	var trimC <-chan time.Time
	if n.cfg.TrimInterval > 0 {
		t := time.NewTicker(n.cfg.TrimInterval)
		defer t.Stop()
		trimC = t.C
	}

	// New may have staged work (a coordinator's startup Phase 1A);
	// release it before first blocking.
	n.commitStaged()

	for {
		allowRemoteCatchup := false
		select {
		case <-n.done:
			n.commitStaged()
			n.finalHandoff()
			return
		case cfg, ok := <-n.watch:
			if !ok {
				n.commitStaged()
				n.finalHandoff()
				return
			}
			n.applyConfig(cfg)
		case m, ok := <-n.in:
			if !ok {
				n.commitStaged()
				n.finalHandoff()
				return
			}
			n.consume(m)
			// Drain whatever else already arrived before committing, so
			// one WAL group commit and one coalesced transport flush
			// cover a burst of messages instead of paying a write
			// barrier and a syscall per message.
		drain:
			for drained := 0; drained < 128; drained++ {
				select {
				case m, more := <-n.in:
					if !more {
						n.commitStaged()
						n.finalHandoff()
						return
					}
					n.consume(m)
				default:
					break drain
				}
			}
		case <-retry.C:
			n.retryUndecided()
			n.chaseGaps()
			allowRemoteCatchup = true
		case <-skipC:
			n.maybeSkip()
		case <-trimC:
			n.startTrimRound()
		}
		// Commit the burst's staged votes and sends before handing
		// deliveries over: a delivery must never outrun the durability
		// of the votes that decided it.
		n.commitStaged()
		n.handoffPending()
		// With everything durable, catch-up may replay dropped instances
		// into the freed delivery buffer. Remote retransmit requests are
		// paced by the retry tick; the extra commit releases one if
		// staged (a no-op otherwise).
		n.pumpCatchup(allowRemoteCatchup)
		n.commitStaged()
		// The burst is fully committed and flushed: the read blocks and
		// interned payload creation references can go back to the pool
		// (holders that outlive the burst took their own references).
		n.releaseBurst()
	}
}

// commitStaged is the group-commit barrier at the end of a drained burst:
// it makes the burst's staged votes durable with a single PutBatch (one
// buffered write + one fsync under SyncEveryPut) and only then releases
// the staged outbound messages, so every forwarded vote is durable first
// — the paper's Section 5.1 invariant at batch granularity. If the log
// rejects the batch the staged sends are dropped entirely (un-logged
// votes must not circulate; fair-lossy links make dropped messages
// indistinguishable from loss) and commitWedged holds back delivery
// release until the retained batch eventually commits.
//
//lint:release
func (n *Node) commitStaged() {
	if len(n.walBatch) > 0 {
		// Time the group commit only when a traced vote is staged: the
		// wal-commit span names the PutBatch (and its fsync) the sampled
		// value waited on.
		var walStart time.Time
		if len(n.stagedTraces) > 0 {
			walStart = time.Now()
		}
		if err := n.cfg.Log.PutBatch(n.walBatch); err != nil {
			// Durability failed. Drop the staged sends — un-logged votes
			// must not circulate — but KEEP the staged records: the
			// volatile accepted map already holds these votes and later
			// Phase 1A reports will advertise them, so they must stay
			// queued for the next commit attempt rather than be silently
			// forgotten while the node keeps acting on them. A log that
			// fails persistently wedges this acceptor's output (sends
			// dropped, deliveries withheld) — and once the failure
			// budget is spent the node steps out loudly (self MarkDown)
			// so the surviving quorum stops waiting on its votes. The
			// batch keeps retrying: if the disk recovers, the node
			// rejoins on its own.
			n.commitWedged = true
			n.commitFails++
			n.commitFailCount.Add(1)
			n.lastCommitErr.Store(err.Error())
			if b := n.cfg.CommitFailureBudget; b > 0 && !n.steppedOut && n.commitFails >= b {
				n.steppedOut = true
				n.steppedOutFlag.Store(true)
				n.cfg.Coord.MarkDown(n.id)
			}
			for i := range n.stagedSends {
				n.stagedSends[i].Value.Buf.Release()
				n.stagedSends[i] = transport.Message{}
			}
			n.stagedSends = n.stagedSends[:0]
			return
		}
		n.commitFails = 0
		if n.steppedOut {
			// The log accepted the retained batch again: rejoin.
			n.steppedOut = false
			n.steppedOutFlag.Store(false)
			n.cfg.Coord.MarkUp(n.id)
		}
		n.walGauge.Observe(len(n.walBatch))
		if !walStart.IsZero() {
			d := time.Since(walStart)
			for _, st := range n.stagedTraces {
				n.tracer.Add(st.ctx, "wal-commit", uint32(n.ring), st.inst, st.id, walStart, d)
			}
		}
		n.stagedTraces = n.stagedTraces[:0]
		for i := range n.walBatch {
			n.walBatch[i] = storage.Record{} // release record buffers
		}
		n.walBatch = n.walBatch[:0]
		// The log copied the records (PutBatch contract), so the pooled
		// buffers they were encoded into can recycle now.
		n.releaseWALBufs()
	}
	n.commitWedged = false
	if len(n.stagedSends) == 0 {
		return
	}
	n.sendGauge.Observe(len(n.stagedSends))
	if n.batchTr != nil {
		_ = n.batchTr.SendBatch(n.stagedSends)
	} else {
		for i := range n.stagedSends {
			_ = n.tr.Send(n.stagedSends[i].To, n.stagedSends[i])
		}
	}
	for i := range n.stagedSends {
		// The transport serialized the frame synchronously (tcpConn.write
		// copies into its own buffer before the syscall), so the staged
		// send's payload reference can be dropped now.
		n.stagedSends[i].Value.Buf.Release()
		n.stagedSends[i] = transport.Message{} // release payload references
	}
	n.stagedSends = n.stagedSends[:0]
}

// stagePut queues a durable record for the burst's group commit.
func (n *Node) stagePut(instance uint64, record []byte) {
	n.walBatch = append(n.walBatch, storage.Record{Instance: instance, Data: record})
}

// recoverFromLog rebuilds volatile acceptor state from the stable log after
// a restart (Section 5.1, acceptor recovery).
func (n *Node) recoverFromLog() {
	if n.cfg.Log == nil {
		return
	}
	if rec, ok := n.cfg.Log.Get(promiseInstance); ok {
		n.promised = decodePromise(rec)
	}
}

// applyConfig reacts to a ring configuration change: new successor, and
// possibly a coordinator handover to this process.
func (n *Node) applyConfig(cfg coord.RingConfig) {
	n.mu.Lock()
	n.rc = cfg
	n.mu.Unlock()

	if succ, ok := cfg.Successor(n.id); ok {
		n.succ = succ
	} else {
		n.succ = 0 // single-member ring (or everyone else down)
	}
	wasCoord := n.isCoord
	n.isCoord = cfg.Coordinator == n.id && cfg.Roles(n.id).Has(coord.RoleAcceptor)
	if n.isCoord && (!wasCoord || n.ballot < uint32(cfg.Version)) {
		n.becomeCoordinator(uint32(cfg.Version))
	}
	if !n.isCoord {
		n.phase1Ready = false
	}
}

// becomeCoordinator starts a coordinator term: it pre-executes Phase 1 for
// all instances above the node's decision watermark with a term-unique
// ballot (the ring config version, which only grows).
func (n *Node) becomeCoordinator(ballot uint32) {
	n.ballot = ballot
	n.phase1Ready = false
	n.proposedInWin = 0
	// Restart instance assignment above everything this process knows to
	// be decided; Phase 1B reports may push it further.
	if n.nextInstance < n.maxDecided+1 {
		n.nextInstance = n.maxDecided + 1
	}
	m := transport.Message{
		Kind:     transport.KindPhase1A,
		Ring:     n.ring,
		Ballot:   ballot,
		Instance: n.nextDeliver, // report accepted values from here up
	}
	// Vote for our own Phase 1A (the coordinator is an acceptor).
	n.acceptPhase1(&m)
	if n.succ == 0 {
		// Single-member ring: phase 1 trivially complete.
		n.completePhase1(m)
		return
	}
	n.send(n.succ, m)
}

// handle dispatches one protocol message.
func (n *Node) handle(m transport.Message) {
	n.ingestTraces(&m)
	switch m.Kind {
	case transport.KindProposal:
		n.handleProposal(m)
	case transport.KindPhase1A:
		n.handlePhase1A(m)
	case transport.KindPhase2:
		n.handlePhase2(m)
	case transport.KindDecision:
		n.handleDecision(m)
	case transport.KindRetransmitReq:
		n.handleRetransmitReq(m)
	case transport.KindRetransmitResp:
		n.handleRetransmitResp(m)
	case transport.KindSafeResp:
		n.handleSafeResp(m)
	case transport.KindTrim:
		n.handleTrim(m)
	case transport.KindFlowFeedback:
		n.handleFlowFeedback(m)
	default:
		// The router only delivers ring-protocol kinds to this mailbox
		// (transport.isRingKind); service/heartbeat traffic never reaches
		// here. Anything else is a kind this ring version does not speak —
		// fair-lossy transport semantics make dropping it safe.
	}
}

// handleFlowFeedback feeds a learner's merge-stall report into the
// coordinator's rate-leveling pacer (adaptive λ).
func (n *Node) handleFlowFeedback(m transport.Message) {
	if !n.isCoord || !n.cfg.AdaptiveSkip {
		return
	}
	n.pacer.observeStall(time.Duration(m.Instance))
	n.fbCount.Add(1)
}

// handleProposal enqueues a value at the coordinator or forwards it there.
func (n *Node) handleProposal(m transport.Message) {
	if !n.isCoord {
		n.mu.Lock()
		coordID := n.rc.Coordinator
		n.mu.Unlock()
		if coordID != 0 && coordID != n.id {
			// Forwarded verbatim: m keeps its decoded Traces, so the
			// sampled context survives this hop (the transport restamps
			// From, never the optional trailing headers).
			n.spanNow("forward", 0, m.Value)
			n.send(coordID, m)
		}
		return
	}
	if n.pendingQ.len() >= n.cfg.MaxPending {
		// Queue-depth-aware admission control: shed the proposal loudly.
		// A silent drop is indistinguishable from loss, so clients used
		// to hammer the overloaded coordinator with blind retransmits;
		// the Overloaded reply carries a retry-after estimate derived
		// from the queue depth and the decided-rate EWMA so they back
		// off for roughly one queue-drain time instead.
		n.shedCount.Add(1)
		// Reply to the ORIGINAL proposer (Seq, stamped at the client;
		// m.From is restamped per hop and would name the forwarder for
		// proposals that bounced through a non-coordinator).
		replyTo := m.From
		if m.Seq != 0 {
			replyTo = transport.ProcessID(m.Seq)
		}
		if replyTo != 0 {
			n.send(replyTo, transport.Message{
				Kind:     transport.KindOverloaded,
				Instance: uint64(n.retryAfter() / time.Millisecond),
				Count:    uint32(n.pendingQ.len()),
				Value:    transport.Value{ID: m.Value.ID},
			})
		}
		return
	}
	n.pendingQ.push(m.Value)
	n.tryPropose()
}

// retryAfter estimates how long a shed proposer should back off: the time
// this coordinator needs to drain its full proposal queue at the recent
// decided rate, clamped to [5ms, 2s]. Without a rate sample (skips off or
// ring idle) it falls back to the retry interval.
func (n *Node) retryAfter() time.Duration {
	rate := n.pacer.rate.Value()
	if rate < 1 {
		return n.cfg.RetryInterval
	}
	d := time.Duration(float64(n.cfg.MaxPending) / rate * float64(time.Second))
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// tryPropose assigns queued proposals to consensus instances while the
// pipeline window has room, packing several proposals into one instance
// when batching is enabled (message packing, Section 4).
func (n *Node) tryPropose() {
	if !n.isCoord || !n.phase1Ready {
		return
	}
	for n.pendingQ.len() > 0 && len(n.inFlight) < n.cfg.Window {
		v := n.pendingQ.pop()
		if n.cfg.BatchBytes > 0 && n.pendingQ.len() > 0 && !v.Skip {
			v = n.packBatch(v)
		}
		n.proposeValue(v)
	}
}

// packBatch greedily packs queued proposals behind head into one batched
// value of at most BatchBytes payload bytes. The batch encodes into a
// pooled buffer whose creation reference transfers to the returned
// value (and from there to the flight table); the consumed proposals'
// queue references are released once their bytes are packed.
//
//lint:pooled
func (n *Node) packBatch(head transport.Value) transport.Value {
	batch := []transport.InstanceValue{{Value: head}}
	size := len(head.Data)
	for n.pendingQ.len() > 0 && size < n.cfg.BatchBytes {
		next := n.pendingQ.peek()
		if next.Skip || size+len(next.Data) > n.cfg.BatchBytes {
			break
		}
		v := n.pendingQ.pop()
		batch = append(batch, transport.InstanceValue{Value: v})
		size += len(v.Data)
	}
	if len(batch) == 1 {
		return head
	}
	// Encode the packed payload straight into a pooled buffer: the packed
	// value rides the same accept/WAL/forward path as an inbound one. Its
	// creation reference transfers to the flight slot via proposeValue;
	// the consumed source values' references are dropped here (their bytes
	// were just copied).
	pb := bufpool.Get(transport.EncodedBatchSize(batch))
	data := transport.AppendBatch(pb.Bytes()[:0], batch)
	for i := range batch {
		batch[i].Value.Buf.Release()
	}
	return transport.Value{
		ID:      head.ID,
		Batched: true,
		Count:   1,
		Data:    data,
		Buf:     pb,
	}
}

// proposeValue runs Phase 2 for one value: the coordinator logs its own
// vote and forwards the combined 2A/2B message. The flight slot takes
// ownership of the caller's payload reference (released when the slot
// frees: decided, superseded, or node exit).
func (n *Node) proposeValue(v transport.Value) {
	inst := n.nextInstance
	n.nextInstance += v.Span()
	if !v.Skip {
		n.proposedInWin++
	}
	n.inFlight[inst] = &flight{value: v, lastSent: time.Now()}
	n.sendPhase2(inst, v)
}

// recordVote stages the durable vote record for an instance and tracks it
// in the volatile accepted map and its sorted index. The staged record
// commits (group commit) before any message of this burst leaves the node.
// The record is encoded into a pooled buffer (tracked in walBufs, recycled
// once the commit lands) and the accepted map takes its own payload
// reference, held until the instance is trimmed or overwritten.
//
//lint:pooled
func (n *Node) recordVote(ballot uint32, inst uint64, v transport.Value) {
	rec := bufpool.Get(acceptRecordSize(v))
	n.stagePut(inst, appendAccept(rec.Bytes()[:0], ballot, inst, v))
	n.walBufs = append(n.walBufs, rec)
	n.spanNow("vote", inst, v)
	n.traceStagedVote(inst, v)
	if old, ok := n.accepted[inst]; ok {
		old.value.Buf.Release() // re-vote: drop the superseded value's ref
	} else {
		n.acceptedInsert(inst)
	}
	v.Buf.Retain()
	n.accepted[inst] = acceptedRec{ballot: ballot, value: v}
}

// acceptedInsert adds a new instance to the sorted index. Votes arrive in
// almost-increasing instance order, so the append path dominates.
func (n *Node) acceptedInsert(inst uint64) {
	if k := len(n.acceptedIdx); k == 0 || inst > n.acceptedIdx[k-1] {
		n.acceptedIdx = append(n.acceptedIdx, inst)
		return
	}
	i := sort.Search(len(n.acceptedIdx), func(i int) bool { return n.acceptedIdx[i] >= inst })
	if i < len(n.acceptedIdx) && n.acceptedIdx[i] == inst {
		return
	}
	n.acceptedIdx = append(n.acceptedIdx, 0)
	copy(n.acceptedIdx[i+1:], n.acceptedIdx[i:])
	n.acceptedIdx[i] = inst
}

// stagePromise stages the durable record of a raised promise.
func (n *Node) stagePromise() {
	n.stagePut(promiseInstance, encodePromise(n.promised))
}

// sendPhase2 stages the coordinator's vote (durable before sending, as
// recovery requires) and emits the Phase 2A/2B message.
func (n *Node) sendPhase2(inst uint64, v transport.Value) {
	// Durable vote first (Section 5.1) — staged, committed before the
	// message is released.
	n.recordVote(n.ballot, inst, v)
	m := transport.Message{
		Kind:     transport.KindPhase2,
		Ring:     n.ring,
		Ballot:   n.ballot,
		Instance: inst,
		Votes:    1,
		Value:    v,
	}
	n.attachTraces(&m)
	n.mu.Lock()
	majority := n.rc.Majority()
	n.mu.Unlock()
	if int(m.Votes) >= majority || n.succ == 0 {
		// Single-acceptor ring: decided immediately.
		n.decide(inst, v, n.id)
		return
	}
	n.send(n.succ, m)
}

// acceptPhase1 applies a Phase 1A message at an acceptor: promise the
// ballot (durably), vote, and attach this acceptor's accepted values so a
// new coordinator can re-propose possibly-chosen values.
func (n *Node) acceptPhase1(m *transport.Message) {
	if !n.isAcceptor() {
		return
	}
	if m.Ballot < n.promised {
		return // no vote for stale ballots
	}
	if m.Ballot > n.promised {
		n.promised = m.Ballot
		n.stagePromise()
	}
	m.Votes++
	// Report accepted values at or above the scan point: the sorted
	// index finds the scan start in O(log n) and walks only instances
	// >= it, instead of scanning the whole accepted map.
	var report []transport.InstanceValue
	start := sort.Search(len(n.acceptedIdx), func(i int) bool { return n.acceptedIdx[i] >= m.Instance })
	for _, inst := range n.acceptedIdx[start:] {
		report = append(report, transport.InstanceValue{Instance: inst, Value: n.accepted[inst].value})
	}
	if len(report) > 0 {
		existing, err := transport.DecodeBatch(m.Payload)
		if err != nil {
			existing = nil
		}
		m.Payload = transport.EncodeBatch(append(existing, report...))
	}
}

// handlePhase1A processes a circulating Phase 1A: the originating
// coordinator completes Phase 1 when the message returns with a majority;
// other acceptors vote and forward.
func (n *Node) handlePhase1A(m transport.Message) {
	if n.isCoord && m.Ballot == n.ballot {
		n.completePhase1(m)
		return
	}
	n.acceptPhase1(&m)
	if n.succ != 0 {
		n.send(n.succ, m)
	}
}

// completePhase1 finishes the coordinator's Phase 1: with a majority of
// promises it re-proposes every reported accepted value (they may have been
// chosen) and opens the pipeline.
func (n *Node) completePhase1(m transport.Message) {
	n.mu.Lock()
	majority := n.rc.Majority()
	n.mu.Unlock()
	if int(m.Votes) < majority {
		// Election failed (stale promises elsewhere); retry with the
		// next config version or by re-running phase 1 on retry tick.
		n.phase1Ready = false
		return
	}
	reported, err := transport.DecodeBatch(m.Payload)
	if err == nil {
		// Re-propose reported values at the new ballot, highest
		// instance first to fix nextInstance.
		for _, iv := range reported {
			if iv.Instance+iv.Value.Span() > n.nextInstance {
				n.nextInstance = iv.Instance + iv.Value.Span()
			}
		}
		for _, iv := range reported {
			if iv.Instance < n.nextDeliver {
				continue // already decided and delivered
			}
			if _, busy := n.inFlight[iv.Instance]; busy {
				continue
			}
			n.inFlight[iv.Instance] = &flight{value: iv.Value, lastSent: time.Now()}
			n.sendPhase2(iv.Instance, iv.Value)
		}
	}
	n.phase1Ready = true
	n.tryPropose()
}

// handlePhase2 is the acceptor/forwarder path for combined Phase 2A/2B.
func (n *Node) handlePhase2(m transport.Message) {
	if !n.isAcceptor() {
		if n.succ != 0 {
			n.send(n.succ, m)
		}
		return
	}
	if m.Ballot < n.promised {
		return // stale coordinator; drop so it cannot gather a majority
	}
	if m.Ballot > n.promised {
		n.promised = m.Ballot
		n.stagePromise()
	}
	// Stage the vote; the group commit at the end of this burst makes it
	// durable before the forward below is released (Section 5.1).
	n.recordVote(m.Ballot, m.Instance, m.Value)
	m.Votes++
	n.mu.Lock()
	majority := n.rc.Majority()
	n.mu.Unlock()
	if int(m.Votes) >= majority {
		n.decide(m.Instance, m.Value, n.id)
		return
	}
	if n.succ != 0 {
		n.send(n.succ, m)
	}
}

// decide converts an instance into a Decision originating at this process
// and applies it locally.
func (n *Node) decide(inst uint64, v transport.Value, origin transport.ProcessID) {
	n.spanNow("decide", inst, v)
	n.learnDecision(inst, v)
	if n.succ != 0 {
		m := transport.Message{
			Kind:     transport.KindDecision,
			Ring:     n.ring,
			Instance: inst,
			Value:    v,
			Seq:      uint64(origin),
		}
		n.attachTraces(&m)
		n.send(n.succ, m)
	}
}

// handleDecision applies a circulating Decision and forwards it until the
// loop closes at its origin.
func (n *Node) handleDecision(m transport.Message) {
	n.learnDecision(m.Instance, m.Value)
	origin := transport.ProcessID(m.Seq)
	if n.succ != 0 && n.succ != origin {
		n.send(n.succ, m)
	}
}

// learnDecision records a decided instance and advances in-order delivery.
// It never blocks: finished batches go to the delivery stage, and if the
// stage's lag cap is hit the learner transitions to catch-up instead of
// wedging the event loop (and with it acceptor voting and forwarding).
func (n *Node) learnDecision(inst uint64, v transport.Value) {
	if inst < n.nextDeliver {
		n.coordObserveDecided(inst)
		return // duplicate (retransmission or second loop)
	}
	if _, ok := n.learned[inst]; ok {
		return
	}
	n.idleTicks = 0
	v.Buf.Retain() // the learned map holds its own payload reference
	n.learned[inst] = v
	if end := inst + v.Span() - 1; end > n.maxDecided {
		n.maxDecided = end
	}
	n.coordObserveDecided(inst)
	for {
		val, ok := n.learned[n.nextDeliver]
		if !ok {
			break
		}
		delete(n.learned, n.nextDeliver)
		n.decidedCount.Add(1)
		if val.Skip {
			n.skippedCount.Add(uint64(val.Span()))
		}
		// While catching up, live deliveries are suppressed — the
		// consumer has not yet seen [catchupNext, here), so delivering
		// now would reorder; the retransmit path replays this instance
		// later (the protocol still advances at full speed).
		if n.isLearner() && !n.inCatchup.Load() {
			// The learned map's reference transfers to the Delivery entry
			// (ReleaseBatch drops it once the consumer is done).
			n.pending = append(n.pending, Delivery{Ring: n.ring, Instance: n.nextDeliver, Value: val})
			if len(n.pending) >= deliveryBatchCap {
				// Full batch mid-drain (burst catch-ups): hand it over
				// before accumulating more. Commit staged votes first —
				// a released delivery must never depend on a vote that
				// is not yet durable — and keep accumulating if the
				// commit is wedged.
				n.commitStaged()
				if !n.commitWedged {
					n.handoffPending()
				}
			}
		} else {
			// Suppressed (catching up, or not a learner): no Delivery
			// entry will carry this value, so drop the learned map's ref.
			val.Buf.Release()
		}
		n.nextDeliver += val.Span()
	}
}

// coordObserveDecided releases the pipeline slot for a decided instance.
func (n *Node) coordObserveDecided(inst uint64) {
	if f, ok := n.inFlight[inst]; ok {
		f.value.Buf.Release()
		delete(n.inFlight, inst)
		n.tryPropose()
	}
}

// retryUndecided re-proposes instances whose decision is overdue (lost
// messages, successor change mid-flight).
func (n *Node) retryUndecided() {
	if !n.isCoord {
		return
	}
	if !n.phase1Ready {
		// Phase 1 may have been lost in a reconfiguration; re-run it.
		n.becomeCoordinator(n.ballot)
		return
	}
	cutoff := time.Now().Add(-n.cfg.RetryInterval)
	for inst, f := range n.inFlight {
		if inst < n.nextDeliver {
			f.value.Buf.Release()
			delete(n.inFlight, inst)
			continue
		}
		if f.lastSent.Before(cutoff) {
			f.lastSent = time.Now()
			n.sendPhase2(inst, f.value)
		}
	}
	n.tryPropose()
}

// chaseGaps requests retransmission of decided-but-missed instances so a
// learner's in-order delivery never stalls behind a lost Decision. When a
// learner has heard nothing for a few ticks (e.g. it just recovered and the
// ring is quiet), it probes an acceptor blindly: the acceptor returns any
// decided instances at or above our cursor, revealing what we missed.
func (n *Node) chaseGaps() {
	gap := n.nextDeliver <= n.maxDecided
	if gap {
		if _, ok := n.learned[n.nextDeliver]; ok {
			return
		}
	} else {
		if !n.isLearner() {
			return
		}
		n.idleTicks++
		if n.idleTicks < 3 {
			return
		}
		n.idleTicks = 0
	}
	target := n.retransmitTarget()
	if target == 0 {
		return
	}
	count := uint32(512)
	if gap {
		if c := n.maxDecided - n.nextDeliver + 1; c < 512 {
			count = uint32(c)
		}
	}
	n.send(target, transport.Message{
		Kind:     transport.KindRetransmitReq,
		Ring:     n.ring,
		Instance: n.nextDeliver,
		Count:    count,
	})
}

// handleRetransmitReq serves decided values from the acceptor log. Only
// instances below the acceptor's own contiguous decision watermark are
// served: those are stable and their accepted value equals the decision.
func (n *Node) handleRetransmitReq(m transport.Message) {
	if !n.isAcceptor() {
		return
	}
	var batch []transport.InstanceValue
	end := m.Instance + uint64(m.Count)
	for inst := m.Instance; inst < end && inst < n.nextDeliver; inst++ {
		if v, ok := n.lookupDecided(inst); ok {
			batch = append(batch, transport.InstanceValue{Instance: inst, Value: v})
			inst += v.Span() - 1
		}
	}
	if len(batch) == 0 {
		if m.Instance < n.nextDeliver {
			// The range is decided but this acceptor cannot serve any of
			// it — it was trimmed (Section 5.2: a checkpoint quorum made
			// it reclaimable). Say so explicitly: a catch-up learner
			// would otherwise retry a silent void forever. Seq carries
			// the first decided instance still retained (0 if none) as
			// positive evidence of the trim.
			n.send(m.From, transport.Message{
				Kind:     transport.KindRetransmitResp,
				Ring:     n.ring,
				Instance: m.Instance,
				Count:    retransmitUnavailable,
				Seq:      n.firstRetainedFrom(m.Instance),
			})
		}
		return
	}
	resp := transport.Message{
		Kind: transport.KindRetransmitResp,
		Ring: n.ring,
		// Echo the request start so the receiver can correlate the
		// response to a specific catch-up window (starved-above trim
		// evidence must not be derived from unrelated gap-chase
		// responses).
		Instance: m.Instance,
		Payload:  transport.EncodeBatch(batch),
	}
	// Re-attach parked trace contexts so a traced value replayed through
	// catch-up still stamps its downstream merge/apply spans.
	n.attachBatchTraces(&resp, batch)
	n.send(m.From, resp)
}

// retransmitUnavailable in RetransmitResp.Count flags an empty reply for
// a decided-but-trimmed range.
const retransmitUnavailable = 1

// firstRetainedFrom returns the smallest decided instance >= from that
// this acceptor can still serve, or 0 if none.
func (n *Node) firstRetainedFrom(from uint64) uint64 {
	i := sort.Search(len(n.acceptedIdx), func(i int) bool { return n.acceptedIdx[i] >= from })
	if i < len(n.acceptedIdx) && n.acceptedIdx[i] < n.nextDeliver {
		return n.acceptedIdx[i]
	}
	return 0
}

// handleRetransmitResp applies retransmitted decisions. During catch-up,
// entries contiguous from catchupNext are replayed straight into the
// delivery stage (they are below the protocol watermark — learnDecision
// would discard them as duplicates); everything else feeds the normal
// gap-filling path.
func (n *Node) handleRetransmitResp(m transport.Message) {
	if len(m.Payload) == 0 && m.Count == retransmitUnavailable {
		// The acceptor reported our catch-up range unservable: trimmed
		// (Seq names its first retained instance) or simply absent.
		// Either way the data is gone from that peer — the dropped
		// deliveries may be unrecoverable at ring level, so count the
		// report toward an abort instead of wedging in catch-up forever;
		// the consumer recovers via checkpoint transfer, the same path
		// the trim quorum's Predicate 2 assumes for replicas outside it.
		if n.inCatchup.Load() && m.Instance == n.catchupNext.Load() {
			n.noteCatchupUnavailable(m.From)
		}
		return
	}
	batch, err := transport.DecodeBatch(m.Payload)
	if err != nil {
		return
	}
	var cb []Delivery
	next := n.catchupNext.Load()
	room := n.deliveryRoom()
	// Starved-above trim evidence is only valid for a response to OUR
	// catch-up request: the echoed request start must equal the current
	// watermark (a delayed gap-chase response — requested from the
	// protocol watermark, not the catch-up one — must not mark a peer
	// as unable to serve a range it was never asked for).
	forCatchup := m.Instance == next
	starvedAbove, sawNext := false, false
	for _, iv := range batch {
		if n.inCatchup.Load() && iv.Instance < n.nextDeliver {
			switch {
			case iv.Instance == next && room > 0:
				if cb == nil {
					cb = n.getBatch()
				}
				cb = append(cb, Delivery{Ring: n.ring, Instance: iv.Instance, Value: iv.Value})
				next += iv.Value.Span()
				room--
				continue
			case iv.Instance == next:
				// The peer HAS our watermark instance; only the local
				// room ran out. Not trim evidence.
				sawNext = true
			case iv.Instance > next:
				// The peer served decided instances ABOVE our catch-up
				// watermark but nothing at it — e.g. the trim point fell
				// inside the requested window. Same evidence as an
				// explicit unavailable report (unless the watermark
				// entry was present, see sawNext).
				starvedAbove = true
			}
		}
		n.learnDecision(iv.Instance, iv.Value)
	}
	if len(cb) == 0 {
		if cb != nil {
			n.ReleaseBatch(cb)
		}
		if starvedAbove && !sawNext && forCatchup && n.inCatchup.Load() {
			n.noteCatchupUnavailable(m.From)
		}
		return
	}
	if !n.enqueueBatch(cb) {
		n.ReleaseBatch(cb) // room raced away; the next tick re-requests
		return
	}
	n.catchupServed.Add(uint64(len(cb)))
	n.catchupNext.Store(next)
	n.catchupUnavailFrom = nil // progress: earlier unavailable reports are stale
	if n.catchupNext.Load() >= n.nextDeliver {
		n.inCatchup.Store(false)
	}
}

// noteCatchupUnavailable records one peer's report that the catch-up
// range cannot be served. One acceptor might merely have a vote hole (or
// a fresh post-crash log) where others still serve, so the stream aborts
// only once every live peer acceptor has reported the range gone —
// distinct peers, not repeated reports from one (requests rotate over
// them).
func (n *Node) noteCatchupUnavailable(from transport.ProcessID) {
	if n.catchupUnavailFrom == nil {
		n.catchupUnavailFrom = make(map[transport.ProcessID]bool)
	}
	n.catchupUnavailFrom[from] = true
	peers := n.peerAcceptors()
	if len(peers) == 0 {
		return
	}
	for _, p := range peers {
		if !n.catchupUnavailFrom[p] {
			return
		}
	}
	n.abortCatchup()
}

// maybeSkip implements rate leveling: if the coordinator proposed fewer
// values than the pacer's target λ·Δ in the last window, it proposes one
// skip value covering the shortfall so learners merging this ring do not
// stall (Section 4). The pacer owns the window accounting — including the
// saturated-pipeline deficit carry and, with AdaptiveSkip, the
// feedback-driven λ adjustment.
func (n *Node) maybeSkip() {
	if !n.isCoord || !n.phase1Ready {
		return
	}
	proposed := n.proposedInWin
	n.proposedInWin = 0
	span := n.pacer.window(proposed, len(n.inFlight) >= n.cfg.Window)
	n.lambdaGauge.Set(int64(n.pacer.lambdaNow))
	if span <= 0 {
		return
	}
	n.proposeValue(transport.Value{
		ID:    transport.MakeValueID(n.id, n.proposeSeq.Add(1)),
		Skip:  true,
		Count: uint32(span),
	})
}

// startTrimRound begins a trim round (Section 5.2): the coordinator asks
// every learner (replica) for its safe instance k[x]p.
func (n *Node) startTrimRound() {
	if !n.isCoord {
		return
	}
	n.safeResps = make(map[transport.ProcessID]uint64)
	n.mu.Lock()
	learners := n.rc.Learners()
	n.mu.Unlock()
	for _, l := range learners {
		n.send(l, transport.Message{Kind: transport.KindSafeReq, Ring: n.ring})
	}
}

// handleSafeResp collects replicas' safe instances; with a quorum Q_T it
// trims at the minimum (Predicate 2: K[x]_T <= k[x]_p for all p in Q_T).
func (n *Node) handleSafeResp(m transport.Message) {
	if !n.isCoord {
		return
	}
	n.safeResps[m.From] = m.Instance
	n.mu.Lock()
	learners := n.rc.Learners()
	acceptors := n.rc.Acceptors()
	n.mu.Unlock()
	quorum := len(learners)/2 + 1
	if len(n.safeResps) < quorum {
		return
	}
	min := uint64(0)
	first := true
	for _, k := range n.safeResps {
		if first || k < min {
			min = k
			first = false
		}
	}
	if min <= n.lastTrim || min == 0 {
		return
	}
	n.lastTrim = min
	for _, a := range acceptors {
		if a == n.id {
			n.applyTrim(min)
			continue
		}
		n.send(a, transport.Message{Kind: transport.KindTrim, Ring: n.ring, Instance: min})
	}
}

// handleTrim applies a trim instruction at an acceptor.
func (n *Node) handleTrim(m transport.Message) {
	if !n.isAcceptor() {
		return
	}
	n.applyTrim(m.Instance)
}

func (n *Node) applyTrim(upTo uint64) {
	_ = n.cfg.Log.Trim(upTo)
	i := sort.Search(len(n.acceptedIdx), func(i int) bool { return n.acceptedIdx[i] > upTo })
	for _, inst := range n.acceptedIdx[:i] {
		// Trim is the acceptor's release point for its payload reference.
		n.accepted[inst].value.Buf.Release()
		delete(n.accepted, inst)
	}
	// Copy down rather than re-slice so the trimmed prefix does not pin
	// the backing array.
	n.acceptedIdx = append(n.acceptedIdx[:0], n.acceptedIdx[i:]...)
}

// send stages a message for transmission on this ring, stamping the ring
// id. Staged messages are released by commitStaged at the end of the
// current burst, after the burst's votes are durable — callers never
// bypass the group-commit barrier.
func (n *Node) send(to transport.ProcessID, m transport.Message) {
	m.Ring = n.ring
	m.To = to
	m.Block = nil        // read blocks never ride outbound (burst-owned)
	m.Value.Buf.Retain() // the staged send holds its own payload reference
	n.stagedSends = append(n.stagedSends, m)
}
