package ring

import (
	"encoding/binary"
	"testing"
	"time"

	"amcast/internal/transport"
)

// TestSkipPacerCarriesDeficitWhenSaturated pins the window-accounting
// behavior audited in ISSUE 5: a deficit that cannot be proposed because
// the pipeline is saturated is CARRIED into the next window — capped at
// one window's target, so a long saturation does not burst an unbounded
// skip range afterwards.
func TestSkipPacerCarriesDeficitWhenSaturated(t *testing.T) {
	cfg := (&Config{Delta: 10 * time.Millisecond, Lambda: 1000}).withDefaults()
	p := newSkipPacer(cfg)
	const target = 10 // λ·Δ = 1000 * 0.01

	if got := p.window(0, false); got != target {
		t.Fatalf("idle window proposed %d skips, want %d", got, target)
	}
	if got := p.window(4, false); got != target-4 {
		t.Fatalf("partial window proposed %d skips, want %d", got, target-4)
	}
	if got := p.window(target, false); got != 0 {
		t.Fatalf("full window proposed %d skips, want 0", got)
	}

	// Saturated: deficit carried, not proposed.
	if got := p.window(0, true); got != 0 {
		t.Fatalf("saturated window proposed %d skips, want 0", got)
	}
	if p.carry != target {
		t.Fatalf("carry = %d after one saturated window, want %d", p.carry, target)
	}
	// A long saturation must not accumulate an unbounded carry.
	for i := 0; i < 10; i++ {
		if got := p.window(0, true); got != 0 {
			t.Fatalf("saturated window %d proposed %d skips", i, got)
		}
	}
	if p.carry > target {
		t.Fatalf("carry = %d after long saturation, want <= %d (capped at one window)", p.carry, target)
	}
	// Once the pipeline frees, the carried deficit is proposed on top of
	// the window's own — bounded at two windows' worth.
	got := p.window(0, false)
	if got != 2*target {
		t.Fatalf("post-saturation window proposed %d skips, want %d (one window + capped carry)", got, 2*target)
	}
	if p.carry != 0 {
		t.Fatalf("carry = %d after release, want 0", p.carry)
	}
}

// TestSkipPacerAdaptsToStallFeedback drives the adaptive λ loop directly:
// stall reports raise λ toward λmax, calm windows decay it toward λmin.
func TestSkipPacerAdaptsToStallFeedback(t *testing.T) {
	cfg := (&Config{
		Delta:        5 * time.Millisecond,
		Lambda:       1000,
		SkipEnabled:  true,
		AdaptiveSkip: true,
		LambdaMin:    100,
		LambdaMax:    50000,
	}).withDefaults()
	p := newSkipPacer(cfg)

	// Stalled windows: λ must climb to λmax.
	for i := 0; i < 20; i++ {
		p.observeStall(cfg.Delta) // a full window of merge waiting
		p.window(0, false)
	}
	if p.lambdaNow != float64(cfg.LambdaMax) {
		t.Fatalf("lambdaNow = %v after sustained stalls, want λmax %d", p.lambdaNow, cfg.LambdaMax)
	}
	// Calm windows: λ must decay toward λmin (bounded below by it).
	for i := 0; i < 20000; i++ {
		p.window(0, false)
	}
	if p.lambdaNow != float64(cfg.LambdaMin) {
		t.Fatalf("lambdaNow = %v after sustained calm, want λmin %d", p.lambdaNow, cfg.LambdaMin)
	}
	// A stall raise clears the ring's own recent rate in one step.
	for i := 0; i < 10; i++ {
		p.window(40, false) // 8000/s of own traffic
	}
	p.observeStall(cfg.Delta)
	p.window(40, false)
	if p.lambdaNow < 8000 {
		t.Fatalf("lambdaNow = %v after stall under own traffic, want >= recent rate 8000", p.lambdaNow)
	}
}

// TestSlowSubscriberDoesNotStallRing is the isolation acceptance test: a
// learner consuming at a fraction of the ring's speed must not stall
// acceptor voting or the other learners' delivery. The slow subscriber
// is node 2 — the acceptor whose vote completes the majority — so
// against the old coupled event loop this test provably wedges (its loop
// blocks on the full delivery buffer, Phase 2 messages pile up unvoted,
// and the whole ring stalls to its pace; measured ~14s for the fast
// learners vs the 8s deadline). With the decoupled delivery stage the
// fast learners finish at full speed and the slow one catches up through
// the retransmit path without losing or reordering a single delivery.
func TestSlowSubscriberDoesNotStallRing(t *testing.T) {
	c := newCluster(t, 3, func(cfg *Config) {
		cfg.Window = 256
		cfg.DeliverBuffer = 1024
		cfg.RetryInterval = 30 * time.Millisecond
	})
	const total = 6000

	type learnerResult struct {
		count     int
		lastInst  uint64
		outOfSeq  bool
		duplicate bool
	}
	// fastDone lifts the slow consumer's pacing once the fast learners
	// proved isolation, so catch-up completeness can be checked quickly.
	fastDone := make(chan struct{})
	consume := func(n *Node, perEntryDelay time.Duration, done chan learnerResult) {
		var res learnerResult
		for batch := range n.DeliveryBatches() {
			for _, d := range batch {
				if d.Instance <= res.lastInst && res.lastInst != 0 {
					if d.Instance == res.lastInst {
						res.duplicate = true
					} else {
						res.outOfSeq = true
					}
				}
				res.lastInst = d.Instance
				if !d.Value.Skip {
					res.count++
				}
			}
			if perEntryDelay > 0 {
				select {
				case <-fastDone:
				default:
					time.Sleep(time.Duration(len(batch)) * perEntryDelay)
				}
			}
			n.ReleaseBatch(batch)
			if res.count >= total {
				break
			}
		}
		done <- res
	}

	fast1 := make(chan learnerResult, 1)
	fast3 := make(chan learnerResult, 1)
	slow := make(chan learnerResult, 1)
	go consume(c.nodes[1], 0, fast1)
	go consume(c.nodes[3], 0, fast3)
	// ~3ms per entry ≈ 330 msgs/s: far below the in-process ring's decide
	// rate, so the delivery buffer (1024) overruns quickly.
	go consume(c.nodes[2], 3*time.Millisecond, slow)

	go func() {
		payload := make([]byte, 16)
		for i := 0; i < total; i++ {
			binary.LittleEndian.PutUint64(payload, uint64(i))
			_ = c.nodes[1].Propose(append([]byte(nil), payload...))
		}
	}()

	// The fast learners must finish promptly, slow subscriber or not.
	for name, ch := range map[string]chan learnerResult{"node1": fast1, "node3": fast3} {
		select {
		case res := <-ch:
			if res.count < total {
				t.Fatalf("%s delivered %d/%d", name, res.count, total)
			}
			if res.outOfSeq || res.duplicate {
				t.Fatalf("%s delivery order violated (dup=%v outOfSeq=%v)", name, res.duplicate, res.outOfSeq)
			}
		case <-time.After(8 * time.Second):
			t.Fatalf("%s stalled behind the slow subscriber", name)
		}
	}
	close(fastDone)

	// The slow learner must still receive the complete ordered stream —
	// the overrun transitions it to catch-up via the retransmit path, it
	// never silently loses deliveries.
	select {
	case res := <-slow:
		if res.count < total {
			t.Fatalf("slow learner delivered %d/%d", res.count, total)
		}
		if res.outOfSeq || res.duplicate {
			t.Fatalf("slow learner order violated (dup=%v outOfSeq=%v)", res.duplicate, res.outOfSeq)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("slow learner never caught up")
	}

	fs := c.nodes[2].FlowStats()
	if fs.Overruns == 0 {
		t.Fatalf("slow learner never overran the delivery buffer (stats %+v); the test did not exercise catch-up", fs)
	}
	if fs.ServedEntries == 0 {
		t.Fatalf("catch-up served no entries (stats %+v)", fs)
	}
}

// TestOverloadedCoordinatorRepliesLoudly verifies admission control: a
// proposal shed at a full queue produces a KindOverloaded reply with a
// retry-after hint instead of a silent drop.
func TestOverloadedCoordinatorRepliesLoudly(t *testing.T) {
	c := newCluster(t, 3, func(cfg *Config) {
		cfg.MaxPending = 1
		cfg.Window = 1
		cfg.RetryInterval = time.Hour // freeze retries: keep the queue full
	})
	// Block the coordinator's successor link so nothing decides and the
	// queue stays full.
	c.net.Block(1, 2)
	time.Sleep(50 * time.Millisecond)

	// An external proposer (not a ring member) sends proposals straight
	// to the coordinator; overflow must come back as KindOverloaded on
	// its service channel.
	tr := c.net.Attach(99, "local")
	router := transport.NewRouter(tr)
	for i := 0; i < 5; i++ {
		_ = tr.Send(1, transport.Message{
			Kind:  transport.KindProposal,
			Ring:  c.ring,
			Value: transport.Value{ID: transport.MakeValueID(99, uint32(i+1)), Count: 1, Data: []byte("x")},
		})
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case m := <-router.Service():
			if m.Kind != transport.KindOverloaded {
				continue
			}
			if m.Value.ID>>32 != 99 {
				t.Fatalf("overload reply echoes value id %#x, want one of proposer 99", m.Value.ID)
			}
			if m.Instance == 0 {
				t.Fatal("overload reply carries no retry-after hint")
			}
			if fs := c.nodes[1].FlowStats(); fs.ShedProposals == 0 {
				t.Fatalf("coordinator shed counter not incremented: %+v", fs)
			}
			return
		case <-deadline:
			t.Fatal("no Overloaded reply for proposals shed at a full queue")
		}
	}
}

// TestCatchupAbortsWhenRangeTrimmed pins the failure mode of a learner
// whose catch-up range was trimmed from every acceptor's log: instead of
// silently retrying a void forever (delivery wedged, no signal), the
// delivery stream terminates loudly — the consumer observes end-of-stream
// plus FlowStats.CatchupAborted and recovers via checkpoint transfer.
func TestCatchupAbortsWhenRangeTrimmed(t *testing.T) {
	testCatchupAbortsWhenRangeTrimmed(t, false)
}

// TestCatchupAbortsWhenTrimCrossesWindow is the same failure with the
// trim point INSIDE the catch-up request window: acceptors answer with
// decided instances ABOVE the catch-up watermark but none at it, which
// must count as the same trimmed-range evidence as an explicit
// unavailable report.
func TestCatchupAbortsWhenTrimCrossesWindow(t *testing.T) {
	testCatchupAbortsWhenRangeTrimmed(t, true)
}

func testCatchupAbortsWhenRangeTrimmed(t *testing.T, trimInsideWindow bool) {
	c := newCluster(t, 3, func(cfg *Config) {
		cfg.Window = 256
		cfg.DeliverBuffer = 512
		cfg.RetryInterval = 30 * time.Millisecond
	})
	const total = 3000

	// Node 2 consumes nothing: it overruns its buffer and enters
	// catch-up while nodes 1 and 3 drain at full speed.
	done1 := make(chan uint64, 1)
	done3 := make(chan uint64, 1)
	drain := func(n *Node, done chan uint64) {
		count, last := 0, uint64(0)
		for batch := range n.DeliveryBatches() {
			for _, d := range batch {
				if !d.Value.Skip {
					count++
				}
				last = d.Instance
			}
			n.ReleaseBatch(batch)
			if count >= total {
				done <- last
				return
			}
		}
	}
	go drain(c.nodes[1], done1)
	go drain(c.nodes[3], done3)
	go func() {
		for i := 0; i < total; i++ {
			_ = c.nodes[1].Propose([]byte{byte(i)})
		}
	}()
	var lastInst uint64
	for _, ch := range []chan uint64{done1, done3} {
		select {
		case lastInst = <-ch:
		case <-time.After(20 * time.Second):
			t.Fatal("fast learners did not finish")
		}
	}
	// Wait for node 2 to be in catch-up.
	deadline := time.Now().Add(5 * time.Second)
	for !c.nodes[2].FlowStats().CatchupActive {
		if time.Now().After(deadline) {
			t.Fatalf("node 2 never entered catch-up: %+v", c.nodes[2].FlowStats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Trim every acceptor — the catch-up range is now gone everywhere,
	// with later instances retained as positive evidence of the trim.
	// The mid-window variant trims to just past the catch-up watermark,
	// so retransmit replies carry instances above it instead of an
	// explicit unavailable report.
	trimTo := lastInst - 10
	if trimInsideWindow {
		trimTo = c.nodes[2].FlowStats().CatchupNext + 50
		if trimTo > lastInst-10 {
			trimTo = lastInst - 10
		}
	}
	tr := c.net.Attach(98, "local")
	for id := transport.ProcessID(1); id <= 3; id++ {
		_ = tr.Send(id, transport.Message{Kind: transport.KindTrim, Ring: c.ring, Instance: trimTo})
	}

	// The slow consumer's stream must close (not wedge silently).
	streamClosed := make(chan struct{})
	go func() {
		for batch := range c.nodes[2].DeliveryBatches() {
			c.nodes[2].ReleaseBatch(batch)
		}
		close(streamClosed)
	}()
	select {
	case <-streamClosed:
	case <-time.After(15 * time.Second):
		t.Fatalf("delivery stream did not terminate after its catch-up range was trimmed: %+v", c.nodes[2].FlowStats())
	}
	if fs := c.nodes[2].FlowStats(); fs.CatchupAborted == 0 {
		t.Fatalf("stream closed without recording the catch-up abort: %+v", fs)
	}
}
