package ring

import (
	"time"

	"amcast/internal/metrics"
)

// skipPacer owns the coordinator's rate-leveling accounting (Section 4).
// Every Δ the coordinator closes one window: the pacer compares the
// values proposed in the window against the current target λ·Δ and
// returns the skip span (number of null instances) needed to level the
// ring's instance rate.
//
// Static mode reproduces the paper: λ is preset to the maximum expected
// rate (9000 msgs/s LAN, 2000 WAN) and never moves. Adaptive mode turns
// the knob into a feedback loop bounded by [λmin, λmax]:
//
//   - The decided-rate EWMA tracks the ring's own traffic; on a stall
//     report it provides the raise floor so a bursty ring levels to its
//     recent rate in one step.
//   - Learners report merge-stall feedback (ReportMergeStall → observeStall):
//     the deterministic merge waited on this ring, so the skip target
//     multiplies up toward λmax until the merge stops waiting.
//   - Without stall reports the target decays toward λmin, so rings that
//     keep pace stop flooding skip traffic through the WAL and network
//     (deficit ≤ 0 ⇒ no skip instance at all).
//
// Window accounting: a deficit that cannot be proposed because the
// pipeline is saturated is CARRIED into the next window, capped at one
// window's target — the merge still needs those instances to advance, but
// an unbounded carry would burst a huge skip range after a long stall
// (TestSkipPacerCarriesDeficitWhenSaturated pins this behavior).
type skipPacer struct {
	delta        time.Duration
	lambdaStatic float64
	adaptive     bool
	lambdaMin    float64
	lambdaMax    float64

	lambdaNow float64
	rate      *metrics.EWMA
	carry     int
	stallNs   int64
	calm      int
}

const (
	// pacerRateAlpha weights the decided-rate EWMA (per-Δ samples).
	pacerRateAlpha = 0.3
	// pacerHeadroom multiplies the measured rate when a stall report
	// forces a raise, so the target clears the ring's own traffic.
	pacerHeadroom = 1.25
	// pacerRaise is the multiplicative increase per stalled window.
	pacerRaise = 2.0
	// pacerDecay shrinks λ per calm window once pacerCalmWindows passed
	// without any stall report.
	pacerDecay       = 0.99
	pacerCalmWindows = 16
	// pacerStallFrac: stall reports below Δ/pacerStallFrac per window are
	// noise, not a straggling merge.
	pacerStallFrac = 8
)

func newSkipPacer(cfg Config) *skipPacer {
	return &skipPacer{
		delta:        cfg.Delta,
		lambdaStatic: float64(cfg.Lambda),
		adaptive:     cfg.AdaptiveSkip,
		lambdaMin:    float64(cfg.LambdaMin),
		lambdaMax:    float64(cfg.LambdaMax),
		lambdaNow:    float64(cfg.Lambda),
		rate:         metrics.NewEWMA(pacerRateAlpha),
	}
}

// observeStall accumulates merge-stall feedback for the current window.
func (p *skipPacer) observeStall(d time.Duration) {
	if d > 0 {
		p.stallNs += int64(d)
	}
}

// window closes one Δ window. proposed is the number of non-skip values
// proposed in the window; saturated reports a full proposal pipeline.
// It returns the skip span to propose (0 = none).
func (p *skipPacer) window(proposed int, saturated bool) int {
	p.rate.Update(float64(proposed) / p.delta.Seconds())
	lambda := p.lambdaStatic
	if p.adaptive {
		lambda = p.adapt()
	}
	target := int(lambda * p.delta.Seconds())
	if target < 1 {
		target = 1
	}
	deficit := target - proposed + p.carry
	p.carry = 0
	if deficit <= 0 {
		return 0
	}
	if max := 2 * target; deficit > max {
		deficit = max
	}
	if saturated {
		// Pipeline full: the ring is anything but idle, but the merge
		// still counts instances. Carry the deficit (capped at one
		// window's target) instead of silently discarding it.
		if deficit > target {
			deficit = target
		}
		p.carry = deficit
		return 0
	}
	return deficit
}

// adapt closes one adaptive window: consume the window's stall feedback
// and move λ within [λmin, λmax].
func (p *skipPacer) adapt() float64 {
	stall := p.stallNs
	p.stallNs = 0
	if stall > int64(p.delta)/pacerStallFrac {
		// A merge somewhere is waiting on this ring: raise sharply, at
		// least clearing the ring's own recent rate.
		p.calm = 0
		next := p.lambdaNow * pacerRaise
		if floor := p.rate.Value() * pacerHeadroom; floor > next {
			next = floor
		}
		if next > p.lambdaMax {
			next = p.lambdaMax
		}
		p.lambdaNow = next
	} else {
		p.calm++
		if p.calm >= pacerCalmWindows {
			p.lambdaNow *= pacerDecay
		}
	}
	if p.lambdaNow < p.lambdaMin {
		p.lambdaNow = p.lambdaMin
	}
	return p.lambdaNow
}
