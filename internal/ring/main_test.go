package ring

import (
	"testing"

	"amcast/internal/leakcheck"
)

// TestMain gates the package on goroutine-leak verification: a Stop or
// Close path that strands a goroutine fails the whole test binary.
func TestMain(m *testing.M) { leakcheck.Main(m) }
