package ring

import (
	"encoding/binary"

	"amcast/internal/transport"
)

// Acceptor log records frame the vote an acceptor casts for an instance:
//
//	ballot(4) || EncodeBatch([{instance, value}])
//
// The instance is redundant with the log key but keeps records
// self-describing for offline inspection and WAL replay.

// acceptRecordSize is the exact encoded size of a vote record, so the hot
// path can encode into a pre-sized pooled buffer.
func acceptRecordSize(v transport.Value) int {
	return 4 + 4 + 8 + 8 + 1 + 4 + 4 + len(v.Data)
}

// appendAccept appends the durable record for a vote to buf (exactly
// acceptRecordSize bytes). The single-entry batch is encoded in place:
// votes carry the full proposal payload (32 KB packed instances), and an
// intermediate EncodeBatch buffer would double the copy on every
// acceptor's hot path.
//
//lint:deterministic
func appendAccept(buf []byte, ballot uint32, instance uint64, v transport.Value) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], ballot)
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], 1) // batch length
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:8], instance)
	buf = append(buf, tmp[:8]...)
	return transport.AppendValue(buf, v)
}

// encodeAccept builds the durable record for a vote on the heap (tests
// and cold paths; recordVote encodes into a pooled buffer instead).
//
//lint:deterministic
func encodeAccept(ballot uint32, instance uint64, v transport.Value) []byte {
	return appendAccept(make([]byte, 0, acceptRecordSize(v)), ballot, instance, v)
}

// decodeAccept parses a record written by encodeAccept.
func decodeAccept(rec []byte) (ballot uint32, instance uint64, v transport.Value, err error) {
	if len(rec) < 4 {
		return 0, 0, transport.Value{}, transport.ErrShortMessage
	}
	ballot = binary.LittleEndian.Uint32(rec[:4])
	batch, err := transport.DecodeBatch(rec[4:])
	if err != nil {
		return 0, 0, transport.Value{}, err
	}
	if len(batch) != 1 {
		return 0, 0, transport.Value{}, transport.ErrShortMessage
	}
	return ballot, batch[0].Instance, batch[0].Value, nil
}

// promiseInstance is the reserved log key for the acceptor's highest
// promised ballot (persisted so a recovering acceptor does not betray its
// promises). Consensus instances start at 1, so key 0 is free.
const promiseInstance = 0

// encodePromise stores a promised ballot.
//
//lint:deterministic
func encodePromise(ballot uint32) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], ballot)
	return buf[:]
}

// decodePromise reads a promised ballot.
func decodePromise(rec []byte) uint32 {
	if len(rec) < 4 {
		return 0
	}
	return binary.LittleEndian.Uint32(rec[:4])
}
