package ring

import (
	"encoding/binary"

	"amcast/internal/transport"
)

// Acceptor log records frame the vote an acceptor casts for an instance:
//
//	ballot(4) || EncodeBatch([{instance, value}])
//
// The instance is redundant with the log key but keeps records
// self-describing for offline inspection and WAL replay.

// encodeAccept builds the durable record for a vote. The single-entry
// batch is encoded in place: votes carry the full proposal payload (32 KB
// packed instances), and an intermediate EncodeBatch buffer would double
// the copy on every acceptor's hot path.
//
//lint:deterministic
func encodeAccept(ballot uint32, instance uint64, v transport.Value) []byte {
	buf := make([]byte, 0, 4+4+8+8+1+4+4+len(v.Data))
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], ballot)
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], 1) // batch length
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:8], instance)
	buf = append(buf, tmp[:8]...)
	buf = transport.AppendValue(buf, v)
	return buf
}

// decodeAccept parses a record written by encodeAccept.
func decodeAccept(rec []byte) (ballot uint32, instance uint64, v transport.Value, err error) {
	if len(rec) < 4 {
		return 0, 0, transport.Value{}, transport.ErrShortMessage
	}
	ballot = binary.LittleEndian.Uint32(rec[:4])
	batch, err := transport.DecodeBatch(rec[4:])
	if err != nil {
		return 0, 0, transport.Value{}, err
	}
	if len(batch) != 1 {
		return 0, 0, transport.Value{}, transport.ErrShortMessage
	}
	return ballot, batch[0].Instance, batch[0].Value, nil
}

// promiseInstance is the reserved log key for the acceptor's highest
// promised ballot (persisted so a recovering acceptor does not betray its
// promises). Consensus instances start at 1, so key 0 is free.
const promiseInstance = 0

// encodePromise stores a promised ballot.
//
//lint:deterministic
func encodePromise(ballot uint32) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], ballot)
	return buf[:]
}

// decodePromise reads a promised ballot.
func decodePromise(rec []byte) uint32 {
	if len(rec) < 4 {
		return 0
	}
	return binary.LittleEndian.Uint32(rec[:4])
}
