package ring

import (
	"encoding/binary"

	"amcast/internal/transport"
)

// Acceptor log records frame the vote an acceptor casts for an instance:
//
//	ballot(4) || EncodeBatch([{instance, value}])
//
// The instance is redundant with the log key but keeps records
// self-describing for offline inspection and WAL replay.

// encodeAccept builds the durable record for a vote.
func encodeAccept(ballot uint32, instance uint64, v transport.Value) []byte {
	batch := transport.EncodeBatch([]transport.InstanceValue{{Instance: instance, Value: v}})
	buf := make([]byte, 4, 4+len(batch))
	binary.LittleEndian.PutUint32(buf[:4], ballot)
	return append(buf, batch...)
}

// decodeAccept parses a record written by encodeAccept.
func decodeAccept(rec []byte) (ballot uint32, instance uint64, v transport.Value, err error) {
	if len(rec) < 4 {
		return 0, 0, transport.Value{}, transport.ErrShortMessage
	}
	ballot = binary.LittleEndian.Uint32(rec[:4])
	batch, err := transport.DecodeBatch(rec[4:])
	if err != nil {
		return 0, 0, transport.Value{}, err
	}
	if len(batch) != 1 {
		return 0, 0, transport.Value{}, transport.ErrShortMessage
	}
	return ballot, batch[0].Instance, batch[0].Value, nil
}

// promiseInstance is the reserved log key for the acceptor's highest
// promised ballot (persisted so a recovering acceptor does not betray its
// promises). Consensus instances start at 1, so key 0 is free.
const promiseInstance = 0

// encodePromise stores a promised ballot.
func encodePromise(ballot uint32) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], ballot)
	return buf[:]
}

// decodePromise reads a promised ballot.
func decodePromise(rec []byte) uint32 {
	if len(rec) < 4 {
		return 0
	}
	return binary.LittleEndian.Uint32(rec[:4])
}
