package ring

import (
	"testing"

	"amcast/internal/storage"
	"amcast/internal/transport"
)

func TestProposalQueueFIFOAcrossGrowth(t *testing.T) {
	var q proposalQueue
	// Interleave pushes and pops so the head wraps while the buffer
	// grows; FIFO order must survive.
	next, want := uint64(0), uint64(0)
	for round := 0; round < 20; round++ {
		for i := 0; i < 37; i++ {
			next++
			q.push(transport.Value{ID: next})
		}
		for i := 0; i < 23; i++ {
			want++
			if got := q.pop(); got.ID != want {
				t.Fatalf("pop = %d, want %d", got.ID, want)
			}
		}
	}
	if q.len() != int(next-want) {
		t.Fatalf("len = %d, want %d", q.len(), next-want)
	}
	for q.len() > 0 {
		want++
		if got := q.pop(); got.ID != want {
			t.Fatalf("drain pop = %d, want %d", got.ID, want)
		}
	}
}

func TestProposalQueuePeekMatchesPop(t *testing.T) {
	var q proposalQueue
	q.push(transport.Value{ID: 1, Data: []byte("a")})
	q.push(transport.Value{ID: 2, Data: []byte("b")})
	if p := q.peek(); p.ID != 1 || string(p.Data) != "a" {
		t.Fatalf("peek = %+v", p)
	}
	if v := q.pop(); v.ID != 1 {
		t.Fatalf("pop = %d", v.ID)
	}
	if p := q.peek(); p.ID != 2 {
		t.Fatalf("peek after pop = %d", p.ID)
	}
}

func TestAcceptedIndexSortedInsertAndTrim(t *testing.T) {
	n := &Node{accepted: make(map[uint64]acceptedRec)}
	for _, inst := range []uint64{5, 1, 9, 3, 9, 7, 2} { // dup 9 ignored
		if _, ok := n.accepted[inst]; !ok {
			n.acceptedInsert(inst)
		}
		n.accepted[inst] = acceptedRec{}
	}
	want := []uint64{1, 2, 3, 5, 7, 9}
	if len(n.acceptedIdx) != len(want) {
		t.Fatalf("index = %v, want %v", n.acceptedIdx, want)
	}
	for i, inst := range want {
		if n.acceptedIdx[i] != inst {
			t.Fatalf("index = %v, want %v", n.acceptedIdx, want)
		}
	}
	n.cfg.Log = storage.NewMemLog() // applyTrim forwards to the log
	n.applyTrim(4)
	want = []uint64{5, 7, 9}
	if len(n.acceptedIdx) != len(want) {
		t.Fatalf("after trim index = %v, want %v", n.acceptedIdx, want)
	}
	for i, inst := range want {
		if n.acceptedIdx[i] != inst {
			t.Fatalf("after trim index = %v, want %v", n.acceptedIdx, want)
		}
	}
	for inst := uint64(1); inst <= 4; inst++ {
		if _, ok := n.accepted[inst]; ok {
			t.Errorf("instance %d not deleted from accepted map", inst)
		}
	}
}
