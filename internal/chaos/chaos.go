// Package chaos is a declarative fault-injection harness for the
// MRP-Store stack: a scenario is faults × schedule × workload ×
// invariants. The harness boots a full deployment with real failure
// detectors (no oracle MarkDown anywhere), drives an acked-write
// workload, fires scheduled fault events (process kills, network
// partitions, disk faults), heals, and then verifies the three
// invariants every campaign shares:
//
//   - liveness: after the last fault heals, a fresh client makes
//     progress within RecoveryBound;
//   - safety: no acknowledged write is lost or regressed — each key has
//     a single writer issuing strictly increasing values, so the final
//     value must be at least the last acknowledged one;
//   - convergence: every running replica of every partition serializes
//     to identical bytes.
//
// Detection and recovery latencies (kill → marked down, restart →
// marked up) are measured per event and reported as percentiles,
// together with the longest window during which no writer got an ack
// (unavailability) and the throughput dip across 100 ms windows.
package chaos

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	"amcast/internal/cluster"
	"amcast/internal/coord"
	"amcast/internal/metrics"
	"amcast/internal/netem"
	"amcast/internal/transport"
)

// Workload drives the acked-write load under which faults are injected.
type Workload struct {
	// Writers is the number of concurrent writer loops. Each owns a
	// disjoint key set (single writer per key), so "last acknowledged
	// value" is unambiguous. Default 3.
	Writers int
	// Keys per writer. Default 24.
	Keys int
	// Think pauses between a writer's operations. Default 0 (tight loop).
	Think time.Duration
	// Timeout bounds each store operation. Default 10s.
	Timeout time.Duration
}

// Event is one scheduled step of a scenario. Do must return quickly:
// long-running actions (a live split, a restart that replays a WAL)
// should be launched with Run.Go so later events fire on schedule.
type Event struct {
	// At is the offset from workload start.
	At   time.Duration
	Name string
	Do   func(*Run) error
}

// Spec declares a chaos scenario.
type Spec struct {
	Name string
	// Store configures the deployment. The harness forces RetainLogs on
	// (kills must not lose the WAL — that is a different fault) and
	// installs a default Detector when none is set: failure detection is
	// the point, not an option.
	Store cluster.StoreOptions
	// Topology is the latency model (nil = uniform local).
	Topology *netem.Topology
	Workload Workload
	Events   []Event
	// Tail keeps the workload running after the last event. Default 500ms.
	Tail time.Duration
	// RecoveryBound bounds the post-heal liveness probe and the
	// detection/recovery watchers. Default 20s.
	RecoveryBound time.Duration
	// Check, when set, runs extra scenario-specific invariants after the
	// workload stopped and before teardown. Errors land in the report.
	Check func(*Run) error
}

// Report is the machine-readable outcome of one scenario.
type Report struct {
	Name        string  `json:"name"`
	DurationSec float64 `json:"duration_sec"`

	AckedWrites  uint64 `json:"acked_writes"`
	FailedWrites uint64 `json:"failed_writes"`
	// LostWrites counts keys whose final value is below the last
	// acknowledged one — each is a broken promise. Must be zero.
	LostWrites int `json:"lost_writes"`

	Kills    int `json:"kills"`
	Restarts int `json:"restarts"`

	DetectP50Ms  float64 `json:"detect_p50_ms"`
	DetectP99Ms  float64 `json:"detect_p99_ms"`
	RecoverP50Ms float64 `json:"recover_p50_ms"`
	RecoverP99Ms float64 `json:"recover_p99_ms"`
	// MaxUnavailabilityMs is the longest gap between two consecutive
	// acknowledgements observed by any single writer.
	MaxUnavailabilityMs float64 `json:"max_unavailability_ms"`

	SteadyOpsPerSec float64 `json:"steady_ops_per_sec"`
	MinWindowOps    float64 `json:"min_window_ops_per_sec"`
	// ThroughputDip is 1 - min/steady across 100 ms ack windows.
	ThroughputDip float64 `json:"throughput_dip"`

	Liveness  bool     `json:"liveness"`
	Converged bool     `json:"converged"`
	Errors    []string `json:"errors,omitempty"`
	Timeline  []string `json:"timeline"`
}

// Passed reports whether every invariant held.
func (r *Report) Passed() bool {
	return r.LostWrites == 0 && r.Liveness && r.Converged && len(r.Errors) == 0
}

// Run is the live scenario handed to events and checks.
type Run struct {
	Spec    *Spec
	D       *cluster.Deployment
	Cluster *cluster.StoreCluster
	Faults  *netem.FaultPlan

	start time.Time

	mu         sync.Mutex
	timeline   []string
	errs       []string
	detect     *metrics.Histogram
	recoverH   *metrics.Histogram
	kills      int
	restarts   int
	partitions []int // partition indices with running replicas
	stash      map[string]any

	watchers sync.WaitGroup // detection/recovery watchers
	async    sync.WaitGroup // Run.Go background actions
}

// Note appends a timestamped line to the scenario timeline.
func (r *Run) Note(format string, args ...any) {
	line := fmt.Sprintf("%8.0fms %s", float64(time.Since(r.start))/float64(time.Millisecond), fmt.Sprintf(format, args...))
	r.mu.Lock()
	r.timeline = append(r.timeline, line)
	r.mu.Unlock()
}

// Fail records an invariant violation without stopping the scenario.
func (r *Run) Fail(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	r.mu.Lock()
	r.errs = append(r.errs, msg)
	r.mu.Unlock()
	r.Note("FAIL: %s", msg)
}

// Go launches a long-running action (a split, a slow restart) without
// blocking the event scheduler. The harness waits for it before
// verifying invariants.
func (r *Run) Go(name string, fn func() error) {
	r.async.Add(1)
	go func() {
		defer r.async.Done()
		if err := fn(); err != nil {
			r.Note("async %s: %v", name, err)
		}
	}()
}

// Put stashes a scenario-scoped value for a later event or check.
func (r *Run) Put(key string, v any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stash[key] = v
}

// Get reads a value stashed by an earlier event.
func (r *Run) Get(key string) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stash[key]
}

// Coordinator resolves the current coordinator of partition p's ring to
// (partition, replica) indices.
func (r *Run) Coordinator(p int) (int, int, bool) {
	cfg, ok := r.D.Svc.Ring(transport.RingID(p))
	if !ok || cfg.Coordinator == 0 {
		return 0, 0, false
	}
	id := int(cfg.Coordinator)
	return id / 100, id % 100, true
}

// Kill hard-crashes a replica — no liveness mark; the detectors must
// notice — and measures how long detection takes.
func (r *Run) Kill(p, rep int) {
	r.Note("kill %d/%d", p, rep)
	r.mu.Lock()
	r.kills++
	r.mu.Unlock()
	r.Cluster.Kill(p, rep)
	r.WatchDown(p, rep, fmt.Sprintf("kill %d/%d", p, rep))
}

// Restart reboots a killed replica quietly — no liveness mark; the
// detectors re-admit it — and measures how long the rejoin takes.
func (r *Run) Restart(p, rep int) {
	r.Note("restart %d/%d", p, rep)
	r.mu.Lock()
	r.restarts++
	r.mu.Unlock()
	if err := r.Cluster.RestartQuiet(p, rep); err != nil {
		r.Fail("restart %d/%d: %v", p, rep, err)
		return
	}
	r.WatchUp(p, rep, fmt.Sprintf("restart %d/%d", p, rep))
}

// WatchDown measures the time until the replica is marked down on its
// partition ring (for faults injected outside Kill, e.g. partitions).
func (r *Run) WatchDown(p, rep int, label string) { r.watchLiveness(p, rep, label, true) }

// WatchUp measures the time until the replica is marked up again.
func (r *Run) WatchUp(p, rep int, label string) { r.watchLiveness(p, rep, label, false) }

func (r *Run) watchLiveness(p, rep int, label string, wantDown bool) {
	id := cluster.ReplicaID(p, rep)
	ring := transport.RingID(p)
	from := time.Now()
	r.watchers.Add(1)
	go func() {
		defer r.watchers.Done()
		deadline := from.Add(r.Spec.RecoveryBound)
		for {
			cfg, ok := r.D.Svc.Ring(ring)
			if ok && cfg.Down[id] == wantDown {
				el := time.Since(from)
				r.mu.Lock()
				if wantDown {
					r.detect.Record(el)
				} else {
					r.recoverH.Record(el)
				}
				r.mu.Unlock()
				if wantDown {
					r.Note("detected down %d/%d after %v (%s)", p, rep, el.Round(time.Millisecond), label)
				} else {
					r.Note("rejoined %d/%d after %v (%s)", p, rep, el.Round(time.Millisecond), label)
				}
				return
			}
			if time.Now().After(deadline) {
				verb := "marked down"
				if !wantDown {
					verb = "marked up"
				}
				r.Fail("%s: replica %d/%d never %s within %v", label, p, rep, verb, r.Spec.RecoveryBound)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
}

// TrackPartition registers a partition added mid-scenario (a scale-out
// split) so the convergence check covers its replicas too.
func (r *Run) TrackPartition(p int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.partitions = append(r.partitions, p)
}

func (s *Spec) withDefaults() {
	if s.Workload.Writers == 0 {
		s.Workload.Writers = 3
	}
	if s.Workload.Keys == 0 {
		s.Workload.Keys = 24
	}
	if s.Workload.Timeout == 0 {
		s.Workload.Timeout = 10 * time.Second
	}
	if s.Tail == 0 {
		s.Tail = 500 * time.Millisecond
	}
	if s.RecoveryBound == 0 {
		s.RecoveryBound = 20 * time.Second
	}
	if s.Store.Detector == nil {
		s.Store.Detector = &coord.DetectorOptions{Interval: 20 * time.Millisecond}
	}
	s.Store.RetainLogs = true
	if s.Store.RecoveryTimeout == 0 {
		s.Store.RecoveryTimeout = 2 * time.Second
	}
}

// Key returns the workload key with index i (shared with campaigns that
// need to pick a split point inside the loaded key space).
func Key(i int) string { return fmt.Sprintf("k%04d", i) }

// Execute boots the scenario, runs workload and events to completion,
// verifies the invariants and tears the deployment down.
func Execute(spec Spec) (*Report, error) {
	spec.withDefaults()
	d := cluster.NewDeployment(spec.Topology)
	defer d.Close()
	c, err := d.StartStore(spec.Store)
	if err != nil {
		return nil, fmt.Errorf("chaos: start store: %w", err)
	}
	defer c.StopAll()

	run := &Run{
		Spec:     &spec,
		D:        d,
		Cluster:  c,
		Faults:   d.Net.Faults(),
		detect:   metrics.NewHistogram(),
		recoverH: metrics.NewHistogram(),
		stash:    make(map[string]any),
	}
	for p := 1; p <= spec.Store.Partitions; p++ {
		run.partitions = append(run.partitions, p)
	}

	sc, cl, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		return nil, fmt.Errorf("chaos: client: %w", err)
	}
	defer cl.Close()
	sc.Timeout = spec.Workload.Timeout

	// Preload every workload key through consensus so writers can issue
	// pure updates (single writer per key, strictly increasing values).
	total := spec.Workload.Writers * spec.Workload.Keys
	for i := 0; i < total; i++ {
		if err := sc.Insert(Key(i), []byte("init")); err != nil {
			return nil, fmt.Errorf("chaos: preload %s: %w", Key(i), err)
		}
	}

	run.start = time.Now()
	run.Note("scenario %s: %d partitions × %d replicas, %d writers × %d keys",
		spec.Name, spec.Store.Partitions, spec.Store.Replicas, spec.Workload.Writers, spec.Workload.Keys)

	// Writers: each owns key indices ≡ w (mod Writers).
	type writerStats struct {
		lastAck map[string]string
		ackAt   []time.Duration // offsets of every ack, for windows
		acks    uint64
		fails   uint64
		maxGap  time.Duration
	}
	stats := make([]*writerStats, spec.Workload.Writers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < spec.Workload.Writers; w++ {
		ws := &writerStats{lastAck: make(map[string]string)}
		stats[w] = ws
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wsc, wcl, err := c.NewClient(netem.SiteLocal)
			if err != nil {
				run.Fail("writer %d client: %v", w, err)
				return
			}
			defer wcl.Close()
			wsc.Timeout = spec.Workload.Timeout
			last := time.Now()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				k := Key((seq%spec.Workload.Keys)*spec.Workload.Writers + w)
				v := fmt.Sprintf("w%d-%08d", w, seq)
				if err := wsc.Update(k, []byte(v)); err != nil {
					// Faults make timeouts legitimate; the safety net is
					// that an errored write was never acknowledged.
					ws.fails++
					continue
				}
				now := time.Now()
				if gap := now.Sub(last); gap > ws.maxGap {
					ws.maxGap = gap
				}
				last = now
				ws.acks++
				ws.lastAck[k] = v
				ws.ackAt = append(ws.ackAt, now.Sub(run.start))
				if spec.Workload.Think > 0 {
					time.Sleep(spec.Workload.Think)
				}
			}
		}(w)
	}

	// Fire events on schedule.
	events := append([]Event(nil), spec.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	var last time.Duration
	for _, ev := range events {
		if d := ev.At - time.Since(run.start); d > 0 {
			time.Sleep(d)
		}
		run.Note("event: %s", ev.Name)
		if err := ev.Do(run); err != nil {
			run.Fail("event %s: %v", ev.Name, err)
		}
		last = ev.At
	}
	_ = last
	run.async.Wait() // long-running actions (splits, slow restarts)
	time.Sleep(spec.Tail)
	close(stop)
	wg.Wait()
	workDur := time.Since(run.start)

	// Liveness: a fresh client must make progress within RecoveryBound.
	liveness := false
	probeDeadline := time.Now().Add(spec.RecoveryBound)
	sc.Timeout = 2 * time.Second
	if err := sc.Insert("probe", []byte("0")); err != nil {
		run.Note("probe insert: %v", err)
	}
	for n := 0; time.Now().Before(probeDeadline); n++ {
		if err := sc.Update("probe", []byte(fmt.Sprintf("%d", n))); err == nil {
			liveness = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !liveness {
		run.Fail("no progress within %v after the last event", spec.RecoveryBound)
	}

	run.watchers.Wait() // detection/recovery measurements (bounded)

	// Convergence: every running replica of every partition serializes
	// to identical bytes.
	converged := true
	for _, p := range run.partitions {
		if !waitConverged(run, p, 10*time.Second) {
			converged = false
		}
	}

	if spec.Check != nil {
		if err := spec.Check(run); err != nil {
			run.Fail("check: %v", err)
		}
	}

	// Safety: the final value of every key must be at least the last
	// acknowledged one (single writer per key, monotonic values).
	lost := 0
	sc.Timeout = spec.Workload.Timeout
	for w, ws := range stats {
		for k, want := range ws.lastAck {
			got, ok, err := sc.Read(k)
			if err != nil {
				run.Fail("final read %s: %v", k, err)
				lost++
				continue
			}
			if !ok || string(got) < want {
				run.Fail("acked write lost: key %s writer %d: final %q < acked %q", k, w, got, want)
				lost++
			}
		}
	}

	rep := &Report{
		Name:        spec.Name,
		DurationSec: workDur.Seconds(),
		Liveness:    liveness,
		Converged:   converged,
		LostWrites:  lost,
	}
	var allAcks []time.Duration
	for _, ws := range stats {
		rep.AckedWrites += ws.acks
		rep.FailedWrites += ws.fails
		if ms := float64(ws.maxGap) / float64(time.Millisecond); ms > rep.MaxUnavailabilityMs {
			rep.MaxUnavailabilityMs = ms
		}
		allAcks = append(allAcks, ws.ackAt...)
	}
	rep.SteadyOpsPerSec, rep.MinWindowOps, rep.ThroughputDip = throughputWindows(allAcks, workDur)
	run.mu.Lock()
	rep.Kills, rep.Restarts = run.kills, run.restarts
	if run.detect.Count() > 0 {
		rep.DetectP50Ms = float64(run.detect.Quantile(0.50)) / float64(time.Millisecond)
		rep.DetectP99Ms = float64(run.detect.Quantile(0.99)) / float64(time.Millisecond)
	}
	if run.recoverH.Count() > 0 {
		rep.RecoverP50Ms = float64(run.recoverH.Quantile(0.50)) / float64(time.Millisecond)
		rep.RecoverP99Ms = float64(run.recoverH.Quantile(0.99)) / float64(time.Millisecond)
	}
	rep.Errors = append(rep.Errors, run.errs...)
	rep.Timeline = append(rep.Timeline, run.timeline...)
	run.mu.Unlock()
	return rep, nil
}

// throughputWindows buckets acks into 100 ms windows and reports the
// median window rate, the worst window rate, and the dip between them.
func throughputWindows(acks []time.Duration, dur time.Duration) (steady, min, dip float64) {
	const win = 100 * time.Millisecond
	n := int(dur / win)
	if n < 2 || len(acks) == 0 {
		return 0, 0, 0
	}
	counts := make([]int, n)
	for _, at := range acks {
		if b := int(at / win); b >= 0 && b < n {
			counts[b]++
		}
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	steady = float64(sorted[len(sorted)/2]) * float64(time.Second/win)
	min = float64(sorted[0]) * float64(time.Second/win)
	if steady > 0 {
		dip = 1 - min/steady
	}
	return steady, min, dip
}

// waitConverged polls until every running replica of partition p
// serializes to identical bytes.
func waitConverged(r *Run, p int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		var snaps [][]byte
		for rep := 1; rep <= r.Spec.Store.Replicas; rep++ {
			srv := r.Cluster.Server(p, rep)
			if srv == nil {
				continue // killed and not restarted: excused
			}
			snaps = append(snaps, srv.SM().Snapshot())
		}
		equal := len(snaps) > 0
		for i := 1; i < len(snaps); i++ {
			if !bytes.Equal(snaps[0], snaps[i]) {
				equal = false
				break
			}
		}
		if equal {
			return true
		}
		if time.Now().After(deadline) {
			r.Fail("partition %d replicas did not converge within %v", p, timeout)
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}
