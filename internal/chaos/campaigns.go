package chaos

import (
	"fmt"
	"sync"
	"time"

	"amcast/internal/cluster"
	"amcast/internal/netem"
	"amcast/internal/reconfig"
	"amcast/internal/storage"
	"amcast/internal/store"
	"amcast/internal/transport"
)

// CoordinatorFailover kills the live ring coordinator under load —
// repeatedly — and restarts it quietly each time. No MarkDown/MarkUp
// anywhere: detection, failover and re-admission are entirely the
// failure detectors' doing. This is the campaign the whole detector
// stack is accountable to.
func CoordinatorFailover(cycles int) Spec {
	if cycles < 1 {
		cycles = 1
	}
	spec := Spec{
		Name: "coordinator-failover",
		Store: cluster.StoreOptions{
			Partitions:      1,
			Replicas:        3,
			CheckpointEvery: 200,
		},
	}
	at := 300 * time.Millisecond
	for i := 0; i < cycles; i++ {
		victim := fmt.Sprintf("victim-%d", i)
		spec.Events = append(spec.Events,
			Event{At: at, Name: fmt.Sprintf("kill coordinator (cycle %d)", i), Do: func(r *Run) error {
				p, rep, ok := r.Coordinator(1)
				if !ok {
					return fmt.Errorf("no coordinator to kill")
				}
				r.Put(victim, [2]int{p, rep})
				r.Kill(p, rep)
				return nil
			}},
			Event{At: at + 1800*time.Millisecond, Name: fmt.Sprintf("restart (cycle %d)", i), Do: func(r *Run) error {
				v, ok := r.Get(victim).([2]int)
				if !ok {
					return fmt.Errorf("no victim recorded")
				}
				r.Restart(v[0], v[1])
				return nil
			}},
		)
		at += 2800 * time.Millisecond
	}
	spec.Tail = 700 * time.Millisecond
	return spec
}

// RollingKillsDuringSplit starts a live scale-out partition split and,
// while the marker/transfer/boot pipeline is in flight, kills and
// restarts old-partition replicas one at a time. Acked writes must
// survive regardless of whether the split completes or aborts cleanly
// (both are legal outcomes under fire; a half-applied split is not).
func RollingKillsDuringSplit() Spec {
	spec := Spec{
		Name: "rolling-kills-during-split",
		Store: cluster.StoreOptions{
			Partitions:      1,
			Replicas:        3,
			Kind:            store.RangePartitioned,
			CheckpointEvery: 200,
		},
		Workload: Workload{Writers: 3, Keys: 24},
	}
	splitAt := Key(36) // middle of the 72-key workload space
	spec.Events = append(spec.Events,
		Event{At: 250 * time.Millisecond, Name: "start live split", Do: func(r *Run) error {
			if err := r.Cluster.AddPartition(2, 2); err != nil {
				return err
			}
			ctrl, cleanup, err := r.Cluster.NewReconfigController()
			if err != nil {
				return err
			}
			r.Go("split", func() error {
				defer cleanup()
				res, err := ctrl.Split(reconfig.SplitSpec{
					OldGroup: 1,
					NewGroup: 2,
					Key:      splitAt,
					OldReplicas: []transport.ProcessID{
						cluster.ReplicaID(1, 1), cluster.ReplicaID(1, 2), cluster.ReplicaID(1, 3),
					},
				}, func(res *reconfig.SplitResult) error {
					if err := r.Cluster.SeedPartition(2, res.Seed); err != nil {
						return err
					}
					if err := r.Cluster.StartPartition(2); err != nil {
						return err
					}
					r.TrackPartition(2)
					return nil
				})
				if err != nil {
					// A clean abort under fire is legal; the Check below
					// verifies the schema did not half-flip.
					r.Put("split", "aborted")
					r.Note("split aborted: %v", err)
					return nil
				}
				r.Put("split", "completed")
				r.Note("split completed: moved %d keys, schema v%d", res.MovedKeys, res.Schema.Version)
				return nil
			})
			return nil
		}},
		Event{At: 450 * time.Millisecond, Name: "kill replica 1/3", Do: func(r *Run) error {
			r.Kill(1, 3)
			return nil
		}},
		Event{At: 1700 * time.Millisecond, Name: "restart replica 1/3", Do: func(r *Run) error {
			r.Restart(1, 3)
			return nil
		}},
		Event{At: 2600 * time.Millisecond, Name: "kill replica 1/2", Do: func(r *Run) error {
			r.Kill(1, 2)
			return nil
		}},
		Event{At: 3800 * time.Millisecond, Name: "restart replica 1/2", Do: func(r *Run) error {
			r.Restart(1, 2)
			return nil
		}},
	)
	spec.Tail = 700 * time.Millisecond
	spec.Check = func(r *Run) error {
		sc, cl, err := r.Cluster.NewClient(netem.SiteLocal)
		if err != nil {
			return err
		}
		defer cl.Close()
		v := sc.Schema().Version
		switch r.Get("split") {
		case "completed":
			if v != 2 {
				return fmt.Errorf("split reported completed but schema is v%d", v)
			}
		case "aborted":
			if v != 1 {
				return fmt.Errorf("split aborted but schema half-flipped to v%d", v)
			}
		default:
			return fmt.Errorf("split never ran")
		}
		return nil
	}
	return spec
}

// WANPartitionHeal spreads one partition's replicas across EC2 regions
// (the ring pays WAN latency), then severs one replica's region from
// the world. The detectors must evict exactly that replica — the
// pairwise suspicion the isolated node files against everyone else must
// never reach quorum — and re-admit it after the heal, with acked
// writes surviving throughout.
// scale shrinks the geo latencies (0 = 0.05, i.e. 20× faster, the same
// compression the cluster tests use).
func WANPartitionHeal(scale float64) Spec {
	if scale == 0 {
		scale = 0.05
	}
	topo := netem.EC2Topology()
	topo.SetScale(scale)
	regions := []netem.Site{netem.SiteUSEast, netem.SiteUSWest, netem.SiteEUWest}
	spec := Spec{
		Name:     "wan-partition-heal",
		Topology: topo,
		Store: cluster.StoreOptions{
			Partitions:      1,
			Replicas:        3,
			CheckpointEvery: 200,
			SiteOfReplica:   func(p, r int) netem.Site { return regions[(r-1)%len(regions)] },
		},
		// WAN RTTs stretch op latency; keep the op timeout generous.
		Workload: Workload{Writers: 3, Keys: 24, Timeout: 15 * time.Second},
	}
	cut := cluster.ReplicaID(1, 3)
	spec.Events = append(spec.Events,
		Event{At: 500 * time.Millisecond, Name: "isolate replica 1/3 (region cut)", Do: func(r *Run) error {
			r.Faults.Isolate(uint32(cut))
			r.WatchDown(1, 3, "region cut")
			return nil
		}},
		Event{At: 3 * time.Second, Name: "heal region", Do: func(r *Run) error {
			r.Faults.Unisolate(uint32(cut))
			r.WatchUp(1, 3, "region heal")
			return nil
		}},
	)
	spec.Tail = time.Second
	spec.Check = func(r *Run) error {
		cfg, ok := r.D.Svc.Ring(1)
		if !ok {
			return fmt.Errorf("ring 1 vanished")
		}
		for rep := 1; rep <= 3; rep++ {
			if cfg.Down[cluster.ReplicaID(1, rep)] {
				return fmt.Errorf("replica 1/%d still down after heal", rep)
			}
		}
		return nil
	}
	return spec
}

// DiskFullAcceptor fills one acceptor's WAL device mid-run. The ring's
// commit-failure budget must make that node step out loudly (surviving
// quorum keeps deciding), and clearing the fault must let its retained
// batch commit and the node re-admit itself — no detector involvement,
// no oracle, just the WAL health path.
func DiskFullAcceptor() Spec {
	var mu sync.Mutex
	var sick *storage.SimDisk
	victim := cluster.ReplicaID(1, 2)
	spec := Spec{
		Name: "disk-full-acceptor",
		Store: cluster.StoreOptions{
			Partitions:      1,
			Replicas:        3,
			CheckpointEvery: 200,
		},
	}
	spec.Store.Ring.CommitFailureBudget = 5
	spec.Store.Ring.RetryInterval = 20 * time.Millisecond
	spec.Store.NewLog = func(ring transport.RingID, self transport.ProcessID) (storage.Log, error) {
		if self == victim && ring == 1 {
			s := storage.NewSimDisk(storage.NewMemLog(), storage.SSDSpec(), false, 0.0001)
			mu.Lock()
			sick = s
			mu.Unlock()
			return s, nil
		}
		return storage.NewMemLog(), nil
	}
	spec.Events = append(spec.Events,
		Event{At: 400 * time.Millisecond, Name: "disk full at acceptor 1/2", Do: func(r *Run) error {
			mu.Lock()
			s := sick
			mu.Unlock()
			if s == nil {
				return fmt.Errorf("victim's SimDisk was never created")
			}
			s.SetWriteError(storage.ErrDiskFull)
			r.WatchDown(1, 2, "disk full")
			return nil
		}},
		Event{At: 2800 * time.Millisecond, Name: "disk recovers", Do: func(r *Run) error {
			mu.Lock()
			s := sick
			mu.Unlock()
			s.SetWriteError(nil)
			r.WatchUp(1, 2, "disk recovered")
			return nil
		}},
	)
	spec.Tail = 700 * time.Millisecond
	return spec
}
