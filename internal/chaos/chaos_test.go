package chaos

import (
	"encoding/json"
	"testing"
)

func runCampaign(t *testing.T, spec Spec) *Report {
	t.Helper()
	rep, err := Execute(spec)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if js, err := json.MarshalIndent(rep, "", "  "); err == nil {
		t.Logf("report:\n%s", js)
	}
	if !rep.Passed() {
		t.Fatalf("campaign failed: lost=%d liveness=%v converged=%v errors=%v",
			rep.LostWrites, rep.Liveness, rep.Converged, rep.Errors)
	}
	if rep.AckedWrites == 0 {
		t.Fatal("workload acknowledged nothing — the campaign tested an idle cluster")
	}
	return rep
}

// TestChaosCoordinatorFailover is the acceptance campaign: the ring
// coordinator is killed under load with NO MarkDown anywhere in the
// test path. The failure detectors must detect, the ring must re-elect
// and resume, and the quiet restart must be re-admitted — with zero
// acked-write loss.
func TestChaosCoordinatorFailover(t *testing.T) {
	rep := runCampaign(t, CoordinatorFailover(1))
	if rep.Kills != 1 || rep.Restarts != 1 {
		t.Fatalf("kills=%d restarts=%d, want 1/1", rep.Kills, rep.Restarts)
	}
	// The detection histogram only fills if the detectors (not a test
	// oracle) marked the victim down.
	if rep.DetectP50Ms <= 0 {
		t.Fatal("no detection latency recorded — was the coordinator ever auto-detected?")
	}
	if rep.RecoverP50Ms <= 0 {
		t.Fatal("no recovery latency recorded — was the restart ever re-admitted?")
	}
}

// TestChaosRollingKillsDuringSplit crosses reconfiguration with crash
// faults: replicas of the splitting partition die and return while the
// marker/transfer/boot pipeline runs.
func TestChaosRollingKillsDuringSplit(t *testing.T) {
	rep := runCampaign(t, RollingKillsDuringSplit())
	if rep.Kills != 2 || rep.Restarts != 2 {
		t.Fatalf("kills=%d restarts=%d, want 2/2", rep.Kills, rep.Restarts)
	}
}

// TestChaosWANPartitionHeal cuts one region off a geo-replicated ring:
// exactly that replica must be evicted (the isolated node's own
// accusations against everyone else must never reach quorum) and
// re-admitted after the heal.
func TestChaosWANPartitionHeal(t *testing.T) {
	rep := runCampaign(t, WANPartitionHeal(0))
	if rep.DetectP50Ms <= 0 || rep.RecoverP50Ms <= 0 {
		t.Fatalf("detect=%vms recover=%vms, want both measured", rep.DetectP50Ms, rep.RecoverP50Ms)
	}
}

// TestChaosDiskFullAcceptor fills one acceptor's WAL device: the
// commit-failure budget must step it out while the surviving quorum
// keeps deciding, and clearing the fault must re-admit it.
func TestChaosDiskFullAcceptor(t *testing.T) {
	rep := runCampaign(t, DiskFullAcceptor())
	if rep.DetectP50Ms <= 0 || rep.RecoverP50Ms <= 0 {
		t.Fatalf("detect=%vms recover=%vms, want both measured", rep.DetectP50Ms, rep.RecoverP50Ms)
	}
}
