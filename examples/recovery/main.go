// recovery: the paper's Section 5 walkthrough. A three-replica partition
// checkpoints periodically; one replica is killed and loses even its
// checkpoints; on restart it pulls the most recent remote checkpoint from
// a quorum of peers and replays the missing commands from the acceptors.
package main

import (
	"fmt"
	"log"
	"time"

	"amcast/internal/cluster"
	"amcast/internal/core"
	"amcast/internal/netem"
)

func main() {
	d := cluster.NewDeployment(nil)
	defer d.Close()
	c, err := d.StartStore(cluster.StoreOptions{
		Partitions:      1,
		Replicas:        3,
		CheckpointEvery: 10, // checkpoint every 10 commands
		RecoveryTimeout: 2 * time.Second,
		Ring: core.RingOptions{
			SkipEnabled:  true,
			Lambda:       9000,
			TrimInterval: 200 * time.Millisecond,
			BatchBytes:   32 << 10,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	client, raw, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		log.Fatal(err)
	}
	defer raw.Close()

	put := func(n int, tag string) {
		for i := 0; i < n; i++ {
			if err := client.Insert(fmt.Sprintf("%s-%03d", tag, i), []byte(tag)); err != nil {
				log.Fatalf("insert: %v", err)
			}
		}
	}

	put(30, "before")
	fmt.Println("30 inserts done; replicas are checkpointing every 10 commands")
	waitFor(func() bool { return c.Server(1, 3) != nil && c.Server(1, 3).SM().Len() == 30 })
	fmt.Printf("replica 3 holds %d entries, %d checkpoints taken\n",
		c.Server(1, 3).SM().Len(), c.Server(1, 3).Replica().CheckpointCount())

	fmt.Println("\n*** killing replica 3 and WIPING its stable storage ***")
	c.Crash(1, 3)
	c.DropCheckpoints(1, 3)

	put(20, "while-down")
	fmt.Println("20 more inserts while replica 3 is down (service keeps running)")

	fmt.Println("\n*** restarting replica 3 ***")
	start := time.Now()
	if err := c.Restart(1, 3); err != nil {
		log.Fatal(err)
	}
	waitFor(func() bool {
		srv := c.Server(1, 3)
		return srv != nil && srv.SM().Len() == 50
	})
	fmt.Printf("replica 3 recovered all 50 entries in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Println("  1. remote checkpoint fetched from a quorum of peers (Q_R)")
	fmt.Println("  2. missing instances replayed from the acceptors")
	fmt.Println("  3. delivery resumed at the checkpoint's merge position")

	// Cluster still fully serves.
	if err := client.Insert("after", []byte("recovery")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npost-recovery insert ✓")
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatal("timed out waiting for condition")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
