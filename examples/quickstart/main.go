// Quickstart: three processes form one multicast group and deliver the
// same totally ordered message stream via the public amcast API.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"amcast"
)

func main() {
	sys := amcast.NewSystem()
	defer sys.Close()

	// One group, three members playing all roles (proposer, acceptor,
	// learner) — the paper's Figure 2(a) layout.
	members := []amcast.Member{
		{ID: 1, Proposer: true, Acceptor: true, Learner: true},
		{ID: 2, Proposer: true, Acceptor: true, Learner: true},
		{ID: 3, Proposer: true, Acceptor: true, Learner: true},
	}
	if err := sys.CreateGroup(1, members); err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	sequences := make(map[amcast.ProcessID][]string)
	var wg sync.WaitGroup
	wg.Add(3 * 5) // 3 learners × 5 messages

	var nodes []*amcast.Node
	for id := amcast.ProcessID(1); id <= 3; id++ {
		node, err := sys.NewNode(id, amcast.Defaults())
		if err != nil {
			log.Fatal(err)
		}
		defer node.Stop()
		if err := node.Join(1); err != nil {
			log.Fatal(err)
		}
		self := id
		err = node.Subscribe(func(d amcast.Delivery) {
			mu.Lock()
			sequences[self] = append(sequences[self], string(d.Data))
			mu.Unlock()
			wg.Done()
		}, 1)
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, node)
	}

	// Concurrent proposers: the protocol decides one total order.
	for i := 0; i < 5; i++ {
		proposer := nodes[i%3]
		if err := proposer.Multicast(1, []byte(fmt.Sprintf("msg-%d from node %d", i, proposer.ID()))); err != nil {
			log.Fatal(err)
		}
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		log.Fatal("timed out waiting for deliveries")
	}

	mu.Lock()
	defer mu.Unlock()
	for id := amcast.ProcessID(1); id <= 3; id++ {
		fmt.Printf("node %d delivered: %v\n", id, sequences[id])
	}
	for i := range sequences[1] {
		if sequences[1][i] != sequences[2][i] || sequences[1][i] != sequences[3][i] {
			log.Fatal("order diverged — atomic multicast violated!")
		}
	}
	fmt.Println("all three learners delivered the identical sequence ✓")
}
