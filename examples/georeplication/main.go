// georeplication: Figure 7's deployment in miniature — MRP-Store
// partitions in four emulated EC2 regions joined by a global ring.
// Clients write to their local partition at local latency; a scan is
// ordered across all regions.
package main

import (
	"fmt"
	"log"
	"time"

	"amcast/internal/cluster"
	"amcast/internal/core"
	"amcast/internal/netem"
	"amcast/internal/store"
)

func main() {
	topo := netem.EC2Topology()
	topo.SetScale(0.25) // quarter-scale WAN latencies for a snappy demo

	d := cluster.NewDeployment(topo)
	defer d.Close()
	c, err := d.StartStore(cluster.StoreOptions{
		Partitions: 4,
		Replicas:   3,
		Global:     true,
		Kind:       store.HashPartitioned,
		SiteOf:     func(p int) netem.Site { return netem.EC2Regions[p-1] },
		Ring: core.RingOptions{
			SkipEnabled: true,
			Delta:       20 * time.Millisecond, // paper's WAN Δ
			Lambda:      2000,                  // paper's WAN λ
			BatchBytes:  32 << 10,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// One client per region, writing keys owned by its local partition.
	for p := 1; p <= 4; p++ {
		region := netem.EC2Regions[p-1]
		client, raw, err := c.NewClient(region)
		if err != nil {
			log.Fatal(err)
		}
		client.Timeout = 30 * time.Second
		// Find a key this region's partition owns.
		key := ""
		for i := 0; ; i++ {
			k := fmt.Sprintf("%s-key-%d", region, i)
			if int(c.Schema.PartitionOf(k)) == p {
				key = k
				break
			}
		}
		start := time.Now()
		if err := client.Insert(key, []byte(fmt.Sprintf("written in %s", region))); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s local insert %-22q in %6.1fms\n", region, key, float64(time.Since(start).Microseconds())/1000)
		raw.Close()
	}

	// A client in us-west-2 scans the whole store: one multicast to the
	// global group, ordered against every regional write.
	client, raw, err := c.NewClient(netem.SiteUSWest2)
	if err != nil {
		log.Fatal(err)
	}
	defer raw.Close()
	client.Timeout = 60 * time.Second
	start := time.Now()
	entries, err := client.Scan("a", "zzzz")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nglobal scan from us-west-2 (%d entries, %.1fms):\n",
		len(entries), float64(time.Since(start).Microseconds())/1000)
	for _, e := range entries {
		fmt.Printf("  %-24s = %s\n", e.Key, e.Value)
	}
}
