// dlog: a distributed shared log (Section 6.2). Concurrent writers append
// to two logs; a multi-append hits both logs atomically through the global
// group; trim discards a prefix.
package main

import (
	"fmt"
	"log"
	"sync"

	"amcast/internal/cluster"
	"amcast/internal/core"
	"amcast/internal/dlog"
)

func main() {
	d := cluster.NewDeployment(nil)
	defer d.Close()
	c, err := d.StartDLog(cluster.DLogOptions{
		Logs:    2,
		Servers: 3,
		Global:  true,
		Ring:    core.RingOptions{SkipEnabled: true, Lambda: 9000, BatchBytes: 32 << 10},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Multiple concurrent writers; every append gets a unique position.
	var wg sync.WaitGroup
	positions := make(chan uint64, 20)
	for w := 0; w < 4; w++ {
		client, raw, err := c.NewClient()
		if err != nil {
			log.Fatal(err)
		}
		defer raw.Close()
		wg.Add(1)
		go func(w int, client *dlog.Client) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				pos, err := client.Append(1, []byte(fmt.Sprintf("writer%d-entry%d", w, i)))
				if err != nil {
					log.Printf("append: %v", err)
					return
				}
				positions <- pos
			}
		}(w, client)
	}
	wg.Wait()
	close(positions)
	seen := make(map[uint64]bool)
	for p := range positions {
		if seen[p] {
			log.Fatalf("position %d assigned twice!", p)
		}
		seen[p] = true
	}
	fmt.Printf("20 concurrent appends -> %d distinct positions ✓\n", len(seen))

	client, raw, err := c.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer raw.Close()

	// Atomic append to both logs.
	pos, err := client.MultiAppend([]dlog.LogID{1, 2}, []byte("checkpoint-marker"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-append -> log1@%d log2@%d\n", pos[1], pos[2])

	v, err := client.Read(2, pos[2])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read log2@%d = %s\n", pos[2], v)

	// Trim log 1 up to the marker.
	if err := client.Trim(1, pos[1]); err != nil {
		log.Fatal(err)
	}
	if _, err := client.Read(1, 0); err == nil {
		log.Fatal("position 0 should be trimmed")
	}
	fmt.Printf("trim log1@%d ✓ (older positions gone)\n", pos[1])
}
