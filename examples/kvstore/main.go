// kvstore: a three-partition MRP-Store (Section 6.1) with a global ring.
// Single-key operations are multicast to the owning partition only; the
// range scan is multicast to the global group so it is ordered against
// every other operation across partitions.
package main

import (
	"fmt"
	"log"

	"amcast/internal/cluster"
	"amcast/internal/core"
	"amcast/internal/netem"
	"amcast/internal/store"
)

func main() {
	d := cluster.NewDeployment(nil)
	defer d.Close()

	c, err := d.StartStore(cluster.StoreOptions{
		Partitions: 3,
		Replicas:   3,
		Global:     true,
		Kind:       store.RangePartitioned,
		Ring:       core.RingOptions{SkipEnabled: true, Lambda: 9000, BatchBytes: 32 << 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	client, raw, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		log.Fatal(err)
	}
	defer raw.Close()

	// Keys land on different range partitions.
	users := map[string]string{
		"alice": "Lugano", "bob": "Lausanne", "carol": "Geneva",
		"mallory": "Zurich", "trent": "Bern", "zoe": "Basel",
	}
	for name, city := range users {
		if err := client.Insert(name, []byte(city)); err != nil {
			log.Fatalf("insert %s: %v", name, err)
		}
		fmt.Printf("insert %-8s -> partition ring %d\n", name, client.Schema().PartitionOf(name))
	}

	if err := client.Update("alice", []byte("Bellinzona")); err != nil {
		log.Fatal(err)
	}
	v, ok, err := client.Read("alice")
	if err != nil || !ok {
		log.Fatalf("read alice: %v %v", ok, err)
	}
	fmt.Printf("read alice = %s\n", v)

	// Cross-partition scan, totally ordered via the global ring.
	entries, err := client.Scan("a", "zzz")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scan a..zzz (ordered across partitions):")
	for _, e := range entries {
		fmt.Printf("  %-8s = %s\n", e.Key, e.Value)
	}

	if err := client.Delete("mallory"); err != nil {
		log.Fatal(err)
	}
	if _, ok, _ := client.Read("mallory"); ok {
		log.Fatal("mallory should be gone")
	}
	fmt.Println("delete mallory ✓")
}
