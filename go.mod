module amcast

go 1.24
