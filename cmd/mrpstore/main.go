// Command mrpstore runs an MRP-Store cluster (Section 6.1) in a single
// process and serves an interactive command shell on stdin, so the
// partitioned, strongly consistent key-value store can be exercised by
// hand.
//
// Usage:
//
//	mrpstore -partitions 3 -replicas 3 -global
//	mrpstore -obs 127.0.0.1:8090 -trace-sample 100
//
// With -obs the process serves the observability endpoints: Prometheus
// metrics on /metrics, JSON ring state on /debug/rings, assembled traces
// on /debug/traces and /debug/trace/<id>, and pprof under /debug/pprof/.
// -trace-sample N samples every Nth client submission end to end
// (0 disables tracing, 1 traces everything).
//
// Shell commands (Table 1 of the paper):
//
//	insert <key> <value>
//	read   <key>
//	lread  <key>                     # read-index local read (no multicast)
//	sread  <key> <bound>             # bounded-staleness read, e.g. 100ms
//	update <key> <value>
//	delete <key>
//	scan   <lo> <hi>
//	lscan  <lo> <hi>                 # local scan, per-partition boundaries
//	crash  <partition> <replica>     # fail a replica
//	restart <partition> <replica>    # recover it (checkpoint + catch-up)
//	quit
package main

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"flag"

	"amcast/internal/cluster"
	"amcast/internal/core"
	"amcast/internal/netem"
	"amcast/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mrpstore:", err)
		os.Exit(1)
	}
}

func run() error {
	partitions := flag.Int("partitions", 3, "number of partitions")
	replicas := flag.Int("replicas", 3, "replicas per partition")
	global := flag.Bool("global", true, "add a global ring for ordered scans")
	rangePart := flag.Bool("range", false, "range partitioning (default hash)")
	execWorkers := flag.Int("exec-workers", 0, "parallel-apply workers per replica (0 = sequential)")
	obsAddr := flag.String("obs", "", "serve /metrics, /debug and pprof endpoints on this address (e.g. 127.0.0.1:8090)")
	traceSample := flag.Uint64("trace-sample", 0, "trace every Nth client submission (0 = off, 1 = all)")
	flag.Parse()

	d := cluster.NewDeployment(nil)
	defer d.Close()
	d.SetTraceSampling(*traceSample)
	kind := store.HashPartitioned
	if *rangePart {
		kind = store.RangePartitioned
	}
	c, err := d.StartStore(cluster.StoreOptions{
		Partitions:      *partitions,
		Replicas:        *replicas,
		Global:          *global,
		Kind:            kind,
		ExecWorkers:     *execWorkers,
		CheckpointEvery: 100,
		RecoveryTimeout: 2 * time.Second,
		Ring: core.RingOptions{
			SkipEnabled: true,
			Delta:       5 * time.Millisecond,
			Lambda:      9000,
			BatchBytes:  32 << 10,
		},
	})
	if err != nil {
		return err
	}
	if *obsAddr != "" {
		ln, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			return fmt.Errorf("obs listener: %w", err)
		}
		fmt.Printf("observability on http://%s/metrics\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, c.ObsMux()); err != nil {
				fmt.Fprintln(os.Stderr, "mrpstore: obs server:", err)
			}
		}()
	}
	sc, raw, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		return err
	}
	defer raw.Close()

	fmt.Printf("MRP-Store up: %d partitions x %d replicas (global ring: %v)\n",
		*partitions, *replicas, *global)
	fmt.Println("commands: insert|read|lread|sread|update|delete|scan|lscan|crash|restart|quit")

	sc2 := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc2.Scan() {
			return nil
		}
		fields := strings.Fields(sc2.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return nil
		case "insert", "update":
			if len(fields) != 3 {
				fmt.Println("usage:", fields[0], "<key> <value>")
				continue
			}
			var err error
			if fields[0] == "insert" {
				err = sc.Insert(fields[1], []byte(fields[2]))
			} else {
				err = sc.Update(fields[1], []byte(fields[2]))
			}
			report(err, "ok")
		case "read", "lread":
			if len(fields) != 2 {
				fmt.Println("usage:", fields[0], "<key>")
				continue
			}
			var (
				v   []byte
				ok  bool
				err error
			)
			if fields[0] == "read" {
				v, ok, err = sc.Read(fields[1])
			} else {
				v, ok, err = sc.ReadLocal(fields[1])
			}
			printRead(v, ok, err)
		case "sread":
			if len(fields) != 3 {
				fmt.Println("usage: sread <key> <bound>  (e.g. sread k 100ms)")
				continue
			}
			bound, err := time.ParseDuration(fields[2])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			v, ok, err := sc.ReadStale(fields[1], bound)
			printRead(v, ok, err)
		case "delete":
			if len(fields) != 2 {
				fmt.Println("usage: delete <key>")
				continue
			}
			report(sc.Delete(fields[1]), "ok")
		case "scan", "lscan":
			if len(fields) != 3 {
				fmt.Println("usage:", fields[0], "<lo> <hi>")
				continue
			}
			var (
				entries []store.Entry
				err     error
			)
			if fields[0] == "scan" {
				entries, err = sc.Scan(fields[1], fields[2])
			} else {
				entries, err = sc.ScanLocal(fields[1], fields[2])
			}
			if err != nil {
				report(err, "")
				continue
			}
			for _, e := range entries {
				fmt.Printf("%s = %s\n", e.Key, e.Value)
			}
			fmt.Printf("(%d entries)\n", len(entries))
		case "crash":
			p, r, ok := parsePR(fields)
			if !ok {
				continue
			}
			c.Crash(p, r)
			fmt.Printf("replica %d of partition %d terminated\n", r, p)
		case "restart":
			p, r, ok := parsePR(fields)
			if !ok {
				continue
			}
			report(c.Restart(p, r), "recovering")
		default:
			fmt.Println("unknown command", fields[0])
		}
	}
}

func parsePR(fields []string) (int, int, bool) {
	if len(fields) != 3 {
		fmt.Println("usage:", fields[0], "<partition> <replica>")
		return 0, 0, false
	}
	p, err1 := strconv.Atoi(fields[1])
	r, err2 := strconv.Atoi(fields[2])
	if err1 != nil || err2 != nil {
		fmt.Println("partition and replica must be integers")
		return 0, 0, false
	}
	return p, r, true
}

func printRead(v []byte, ok bool, err error) {
	switch {
	case err != nil:
		fmt.Println("error:", err)
	case !ok:
		fmt.Println("(not found)")
	default:
		fmt.Printf("%s\n", v)
	}
}

func report(err error, okMsg string) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if okMsg != "" {
		fmt.Println(okMsg)
	}
}
