// Command dlogd runs a dLog cluster (Section 6.2) in a single process and
// serves an interactive shell for the Table 2 operations.
//
// Usage:
//
//	dlogd -logs 2 -servers 3
//	dlogd -obs 127.0.0.1:8091 -trace-sample 100
//
// With -obs the process serves Prometheus metrics on /metrics, JSON ring
// state on /debug/rings, assembled traces on /debug/trace/<id> and pprof
// under /debug/pprof/. -trace-sample N samples every Nth append.
//
// Shell commands:
//
//	append <log> <value>
//	mappend <log,log,...> <value>
//	read   <log> <pos>
//	trim   <log> <pos>
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"amcast/internal/cluster"
	"amcast/internal/core"
	"amcast/internal/dlog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dlogd:", err)
		os.Exit(1)
	}
}

func run() error {
	logs := flag.Int("logs", 2, "number of shared logs")
	servers := flag.Int("servers", 3, "number of dLog servers")
	obsAddr := flag.String("obs", "", "serve /metrics, /debug and pprof endpoints on this address")
	traceSample := flag.Uint64("trace-sample", 0, "trace every Nth append (0 = off, 1 = all)")
	flag.Parse()

	d := cluster.NewDeployment(nil)
	defer d.Close()
	d.SetTraceSampling(*traceSample)
	c, err := d.StartDLog(cluster.DLogOptions{
		Logs:    *logs,
		Servers: *servers,
		Global:  true,
		Ring: core.RingOptions{
			SkipEnabled: true,
			Delta:       5 * time.Millisecond,
			Lambda:      9000,
			BatchBytes:  32 << 10,
		},
	})
	if err != nil {
		return err
	}
	if *obsAddr != "" {
		ln, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			return fmt.Errorf("obs listener: %w", err)
		}
		fmt.Printf("observability on http://%s/metrics\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, c.ObsMux()); err != nil {
				fmt.Fprintln(os.Stderr, "dlogd: obs server:", err)
			}
		}()
	}
	dc, raw, err := c.NewClient()
	if err != nil {
		return err
	}
	defer raw.Close()

	fmt.Printf("dLog up: %d logs on %d servers\n", *logs, *servers)
	fmt.Println("commands: append|mappend|read|trim|quit")
	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !in.Scan() {
			return nil
		}
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return nil
		case "append":
			if len(fields) != 3 {
				fmt.Println("usage: append <log> <value>")
				continue
			}
			l, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Println("log must be an integer")
				continue
			}
			pos, err := dc.Append(dlog.LogID(l), []byte(fields[2]))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("position %d\n", pos)
		case "mappend":
			if len(fields) != 3 {
				fmt.Println("usage: mappend <log,log,...> <value>")
				continue
			}
			var ids []dlog.LogID
			for _, s := range strings.Split(fields[1], ",") {
				l, err := strconv.Atoi(s)
				if err != nil {
					fmt.Println("log must be an integer")
					ids = nil
					break
				}
				ids = append(ids, dlog.LogID(l))
			}
			if len(ids) == 0 {
				continue
			}
			positions, err := dc.MultiAppend(ids, []byte(fields[2]))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for l, p := range positions {
				fmt.Printf("log %d -> position %d\n", l, p)
			}
		case "read":
			l, p, ok := parseLP(fields)
			if !ok {
				continue
			}
			v, err := dc.Read(dlog.LogID(l), p)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("%s\n", v)
		case "trim":
			l, p, ok := parseLP(fields)
			if !ok {
				continue
			}
			if err := dc.Trim(dlog.LogID(l), p); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("ok")
		default:
			fmt.Println("unknown command", fields[0])
		}
	}
}

func parseLP(fields []string) (int, uint64, bool) {
	if len(fields) != 3 {
		fmt.Println("usage:", fields[0], "<log> <pos>")
		return 0, 0, false
	}
	l, err1 := strconv.Atoi(fields[1])
	p, err2 := strconv.ParseUint(fields[2], 10, 64)
	if err1 != nil || err2 != nil {
		fmt.Println("log and pos must be integers")
		return 0, 0, false
	}
	return l, p, true
}
