// Command bench regenerates the paper's evaluation figures (Section 8)
// against this repository's implementation, plus the repository's own
// regression benchmarks.
//
// Usage:
//
//	bench -fig 3            # one figure (3..8)
//	bench -fig all          # every figure
//	bench -ablation all     # design-choice ablations (merge-M, skips,
//	                        # batching, global-ring)
//	bench -delivery         # delivery pipeline: per-message vs batched
//	bench -io               # acceptor I/O: per-put fsync vs group commit
//	bench -ckpt             # checkpoints: sync-blocking vs COW-async
//	bench -reconfig         # online reconfiguration: live split under load
//	bench -flow             # flow control: static vs adaptive λ,
//	                        # slow-replica isolation (EC2 WAN)
//	bench -exec             # execution: parallel apply scaling,
//	                        # read-index vs multicast reads
//	bench -chaos            # chaos campaigns: coordinator kills, rolling
//	                        # kills during a live split, WAN partition
//	                        # heal, disk-full acceptor
//	bench -obs              # tracing overhead: per-value tracing off vs
//	                        # 1% vs 100% sampling
//	bench -duration 5s -scale 0.5 -clients 100 -records 5000
//
// Each regression benchmark accepts -json FILE to snapshot its result
// (BENCH_delivery.json, BENCH_io.json, BENCH_ckpt.json,
// BENCH_reconfig.json, BENCH_flow.json, BENCH_exec.json,
// BENCH_chaos.json, BENCH_obs.json in CI).
//
// Scale < 1 shrinks emulated device and WAN latencies proportionally so
// runs finish quickly while preserving the ratios between configurations;
// scale=1 uses realistic 2014-era hardware numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"amcast/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	fig := flag.String("fig", "", "figure to regenerate: 3,4,5,6,7,8 or 'all'")
	ablation := flag.String("ablation", "", "ablation to run: merge-m, skip, batch, global-ring or 'all'")
	delivery := flag.Bool("delivery", false, "run the delivery-pipeline benchmark (per-message vs batched)")
	ioBench := flag.Bool("io", false, "run the acceptor I/O benchmark (per-put fsync vs group commit)")
	ckptBench := flag.Bool("ckpt", false, "run the checkpoint-pipeline benchmark (sync-seed vs COW-async)")
	reconfigBench := flag.Bool("reconfig", false, "run the online-reconfiguration benchmark (live partition split under load)")
	flowBench := flag.Bool("flow", false, "run the flow-control benchmark (static vs adaptive rate leveling, slow-replica isolation)")
	execBench := flag.Bool("exec", false, "run the execution benchmark (conflict-aware parallel apply scaling, read-index vs multicast reads)")
	chaosBench := flag.Bool("chaos", false, "run the chaos campaigns (failure detection, failover and recovery under injected faults)")
	obsBench := flag.Bool("obs", false, "run the tracing-overhead benchmark (per-value tracing off vs 1% vs 100% sampling)")
	memBench := flag.Bool("mem", false, "run the memory benchmark (allocs/msg and GC pauses: pooled vs pre-pool read path, fig3-style and WAN pipelines)")
	benchJSON := flag.String("json", "", "write the -delivery, -io, -ckpt, -reconfig, -flow, -exec, -chaos or -obs benchmark result to this JSON file")
	seedBaseline := flag.Float64("seed-baseline", 0, "recorded seed (pre-refactor) delivered msgs/s for the same workload; adds speedup_vs_seed to the JSON")
	duration := flag.Duration("duration", 2*time.Second, "measurement window per configuration")
	scale := flag.Float64("scale", 0.25, "emulated latency scale (1.0 = realistic hardware)")
	clients := flag.Int("clients", 100, "maximum client threads")
	records := flag.Int("records", 2000, "YCSB database records")
	flag.Parse()

	o := bench.Options{
		Out:      os.Stdout,
		Duration: *duration,
		Scale:    *scale,
		Clients:  *clients,
		Records:  *records,
	}
	if *fig == "" && *ablation == "" && !*delivery && !*ioBench && !*ckptBench && !*reconfigBench && !*flowBench && !*execBench && !*chaosBench && !*obsBench && !*memBench {
		flag.Usage()
		return fmt.Errorf("pass -fig, -ablation, -delivery, -io, -ckpt, -reconfig, -flow, -exec, -chaos, -obs or -mem")
	}
	selected := 0
	for _, b := range []bool{*delivery, *ioBench, *ckptBench, *reconfigBench, *flowBench, *execBench, *chaosBench, *obsBench, *memBench} {
		if b {
			selected++
		}
	}
	if selected > 1 && *benchJSON != "" {
		return fmt.Errorf("-json targets one benchmark; pass exactly one of -delivery, -io, -ckpt, -reconfig, -flow, -exec, -chaos, -obs, -mem")
	}
	if selected == 0 && *benchJSON != "" {
		return fmt.Errorf("-json applies to the -delivery, -io, -ckpt, -reconfig, -flow, -exec, -chaos, -obs and -mem benchmarks only")
	}
	if !*delivery && *seedBaseline > 0 {
		return fmt.Errorf("-seed-baseline applies to the -delivery benchmark only")
	}

	if *delivery {
		res, err := bench.DeliveryBench(o)
		if err != nil {
			return err
		}
		if *seedBaseline > 0 {
			res.SeedBaseline = &bench.SeedBaseline{
				Commit:   "9613f2f (seed)",
				Pipeline: "per-message callbacks",
				MsgsPerS: *seedBaseline,
			}
			res.SpeedupVsSeed = res.Batched.MsgsPerS / *seedBaseline
			fmt.Printf("speedup vs seed baseline: %.2fx\n", res.SpeedupVsSeed)
		}
		if *benchJSON != "" {
			if err := res.WriteJSON(*benchJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchJSON)
		}
	}

	if *ioBench {
		res, err := bench.IOBench(o)
		if err != nil {
			return err
		}
		if *benchJSON != "" {
			if err := res.WriteJSON(*benchJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchJSON)
		}
	}

	if *ckptBench {
		res, err := bench.CkptBench(o)
		if err != nil {
			return err
		}
		if *benchJSON != "" {
			if err := res.WriteJSON(*benchJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchJSON)
		}
	}

	if *reconfigBench {
		res, err := bench.ReconfigBench(o)
		if err != nil {
			return err
		}
		if *benchJSON != "" {
			if err := res.WriteJSON(*benchJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchJSON)
		}
	}

	if *flowBench {
		res, err := bench.FlowBench(o)
		if err != nil {
			return err
		}
		if *benchJSON != "" {
			if err := res.WriteJSON(*benchJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchJSON)
		}
	}

	if *execBench {
		res, err := bench.ExecBench(o)
		if err != nil {
			return err
		}
		if *benchJSON != "" {
			if err := res.WriteJSON(*benchJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchJSON)
		}
	}

	if *chaosBench {
		res, err := bench.ChaosBench(o)
		if *benchJSON != "" {
			// Snapshot the reports even when a campaign failed its bar.
			if werr := res.WriteJSON(*benchJSON); werr != nil {
				return werr
			}
			fmt.Printf("wrote %s\n", *benchJSON)
		}
		if err != nil {
			return err
		}
	}

	if *obsBench {
		res, err := bench.ObsBench(o)
		if err != nil {
			return err
		}
		if *benchJSON != "" {
			if err := res.WriteJSON(*benchJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchJSON)
		}
	}

	if *memBench {
		res, err := bench.MemBench(o)
		if err != nil {
			return err
		}
		if *benchJSON != "" {
			if err := res.WriteJSON(*benchJSON); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchJSON)
		}
	}

	runFig := func(name string) error {
		switch name {
		case "3":
			_, err := bench.Fig3(o)
			return err
		case "4":
			_, err := bench.Fig4(o)
			return err
		case "5":
			_, err := bench.Fig5(o)
			return err
		case "6":
			_, err := bench.Fig6(o)
			return err
		case "7":
			_, err := bench.Fig7(o)
			return err
		case "8":
			// The recovery timeline wants a longer window.
			o8 := o
			if o8.Duration < 10*time.Second {
				o8.Duration = 10 * time.Second
			}
			_, err := bench.Fig8(o8)
			return err
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
	}
	runAblation := func(name string) error {
		switch name {
		case "merge-m":
			_, err := bench.AblationMergeM(o)
			return err
		case "skip":
			_, err := bench.AblationSkip(o)
			return err
		case "batch":
			_, err := bench.AblationBatch(o)
			return err
		case "global-ring":
			_, err := bench.AblationGlobalRing(o)
			return err
		default:
			return fmt.Errorf("unknown ablation %q", name)
		}
	}

	switch *fig {
	case "":
	case "all":
		for _, f := range []string{"3", "4", "5", "6", "7", "8"} {
			if err := runFig(f); err != nil {
				return err
			}
		}
	default:
		if err := runFig(*fig); err != nil {
			return err
		}
	}
	switch *ablation {
	case "":
	case "all":
		for _, a := range []string{"merge-m", "skip", "batch", "global-ring"} {
			if err := runAblation(a); err != nil {
				return err
			}
		}
	default:
		if err := runAblation(*ablation); err != nil {
			return err
		}
	}
	return nil
}
