// Command lint runs the repo's protocol-invariant analyzers (see
// internal/lint) over the given package patterns and exits non-zero on
// any finding. It is a required CI gate:
//
//	go run ./cmd/lint ./...
//
// Suppressions use `//lint:allow <analyzer> <reason>` on (or directly
// above) the offending line, or in a function's doc comment to cover the
// whole function; the reason is mandatory, and stale suppressions are
// themselves reported.
package main

import (
	"fmt"
	"os"

	"amcast/internal/lint"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prog, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Run(prog, lint.All(), lint.Options{ReportUnusedAllows: true})
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
