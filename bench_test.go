package amcast

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section 8), each delegating to the harness in internal/bench with
// CI-sized parameters. Regenerate full-size figures with:
//
//	go run ./cmd/bench -fig all -duration 5s -scale 1
//
// Custom metrics: ops/s (throughput) and ms/op (mean latency) as reported
// by the harness, so `go test -bench .` output mirrors the figures.

import (
	"io"
	"testing"
	"time"

	"amcast/internal/bench"
	"amcast/internal/ycsb"
)

func benchOpts() bench.Options {
	return bench.Options{
		Out:      io.Discard,
		Duration: 500 * time.Millisecond,
		Scale:    0.05,
		Clients:  16,
		Records:  300,
	}
}

// BenchmarkTable1Operations covers Table 1 (the MRP-Store API) by driving
// every operation through a live partitioned deployment via the Figure 4
// harness's MRP-Store configuration (workload A exercises reads+updates;
// inserts/deletes/scans are covered by the store integration tests).
func BenchmarkTable1Operations(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig4YCSBOnMRP(o, ycsb.WorkloadA)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res, "ops/s")
	}
}

// BenchmarkTable2Operations covers Table 2 (the dLog API) through the
// Figure 5 dLog configuration (appends; reads/trims covered by tests).
func BenchmarkTable2Operations(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig5DLogPoint(o, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OpsPerS, "ops/s")
		b.ReportMetric(res.MeanMs, "ms/op")
	}
}

// BenchmarkFig3 regenerates Figure 3 (Multi-Ring Paxos baseline across
// storage modes and request sizes).
func BenchmarkFig3(b *testing.B) {
	o := benchOpts()
	o.Duration = 200 * time.Millisecond
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig3(o)
		if err != nil {
			b.Fatal(err)
		}
		// Report the in-memory 32 KB cell as the figure's headline.
		for _, r := range res.Rows {
			if r.Mode.String() == "In Memory" && r.ValueSize == 32768 {
				b.ReportMetric(r.Mbps, "Mbps")
			}
		}
	}
}

// BenchmarkFig4 regenerates Figure 4 (YCSB across the four systems).
func BenchmarkFig4(b *testing.B) {
	o := benchOpts()
	o.Duration = 200 * time.Millisecond
	o.Clients = 8
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig4(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Cells {
			if c.System == bench.SysMRPGlobal && c.Workload == ycsb.WorkloadA {
				b.ReportMetric(c.OpsPerS, "ops/s")
			}
		}
	}
}

// BenchmarkFig5 regenerates Figure 5 (dLog vs Bookkeeper).
func BenchmarkFig5(b *testing.B) {
	o := benchOpts()
	o.Duration = 200 * time.Millisecond
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig5(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) > 0 {
			b.ReportMetric(res.Points[len(res.Points)-1].OpsPerS, "ops/s")
		}
	}
}

// BenchmarkFig6 regenerates Figure 6 (dLog vertical scalability).
func BenchmarkFig6(b *testing.B) {
	o := benchOpts()
	o.Duration = 200 * time.Millisecond
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[len(res.Points)-1].OpsPerS, "ops/s")
	}
}

// BenchmarkFig7 regenerates Figure 7 (horizontal scalability across EC2
// regions).
func BenchmarkFig7(b *testing.B) {
	o := benchOpts()
	o.Duration = 300 * time.Millisecond
	o.Scale = 0.02
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig7(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[len(res.Points)-1].OpsPerS, "ops/s")
	}
}

// BenchmarkFig8 regenerates Figure 8 (recovery impact timeline).
func BenchmarkFig8(b *testing.B) {
	o := benchOpts()
	o.Duration = 3 * time.Second
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig8(o)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, s := range res.Samples {
			sum += s.OpsPerS
		}
		if len(res.Samples) > 0 {
			b.ReportMetric(sum/float64(len(res.Samples)), "ops/s")
		}
	}
}

// BenchmarkAblationMergeM sweeps the deterministic merge quota M.
func BenchmarkAblationMergeM(b *testing.B) {
	o := benchOpts()
	o.Duration = 200 * time.Millisecond
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationMergeM(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSkip compares rate leveling on/off under imbalance.
func BenchmarkAblationSkip(b *testing.B) {
	o := benchOpts()
	o.Duration = 200 * time.Millisecond
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationSkip(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBatch compares message packing on/off.
func BenchmarkAblationBatch(b *testing.B) {
	o := benchOpts()
	o.Duration = 200 * time.Millisecond
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationBatch(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGlobalRing compares global-ring vs independent rings.
func BenchmarkAblationGlobalRing(b *testing.B) {
	o := benchOpts()
	o.Duration = 200 * time.Millisecond
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationGlobalRing(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMulticastLatency measures the public API's end-to-end multicast
// latency on a three-node group (microbenchmark, not a paper figure).
func BenchmarkMulticastLatency(b *testing.B) {
	sys := NewSystem()
	defer sys.Close()
	members := []Member{
		{ID: 1, Proposer: true, Acceptor: true, Learner: true},
		{ID: 2, Proposer: true, Acceptor: true, Learner: true},
		{ID: 3, Proposer: true, Acceptor: true, Learner: true},
	}
	if err := sys.CreateGroup(1, members); err != nil {
		b.Fatal(err)
	}
	delivered := make(chan struct{}, 1024)
	var nodes []*Node
	for id := ProcessID(1); id <= 3; id++ {
		opts := Defaults()
		opts.RetryInterval = 50 * time.Millisecond
		n, err := sys.NewNode(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		defer n.Stop()
		if err := n.Join(1); err != nil {
			b.Fatal(err)
		}
		if id == 1 {
			if err := n.Subscribe(func(Delivery) {
				select {
				case delivered <- struct{}{}:
				default:
				}
			}, 1); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := n.Subscribe(func(Delivery) {}, 1); err != nil {
				b.Fatal(err)
			}
		}
		nodes = append(nodes, n)
	}
	payload := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nodes[0].Multicast(1, payload); err != nil {
			b.Fatal(err)
		}
		<-delivered
	}
}
